//! The adversarial workload engine: deterministic zipfian sampling and
//! bounded out-of-order replay behind the [`Workload`](crate::config::Workload)
//! modes.
//!
//! Everything here is pure integer arithmetic — the zipf weights are computed
//! with a fixed-point `log2`/`exp2` pair rather than floating-point `powf` —
//! so streams are bit-identical across platforms and the golden-stream
//! snapshot tests can pin exact fingerprints.

use crate::config::{OutOfOrder, ZipfSkew};

/// Seed salt separating the skew channel from the core generator's draws.
const SKEW_SALT: u64 = 0x5ca1_ab1e_0000_0001;
/// Seed salt for the out-of-order block permutations.
const SHUFFLE_SALT: u64 = 0x0ff0_0f0f_0000_0002;

/// The deterministic splitmix64 mix shared with the core generator: one
/// definition, drawn from on salted seed channels per use.
pub(crate) fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed.wrapping_add(value).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `floor(log2(x) * 2^16)` for `x >= 1`, computed by iterated squaring of the
/// mantissa — exact integer arithmetic, no floating point.
fn log2_q16(x: u64) -> u64 {
    debug_assert!(x >= 1, "log2 of zero");
    let int_part = (63 - x.leading_zeros()) as u64;
    // Mantissa in [1, 2) as Q32 fixed point.
    let mut m: u128 = ((x as u128) << 32) >> int_part;
    let mut result = int_part << 16;
    for bit in (0..16).rev() {
        m = (m * m) >> 32; // still Q32; m now in [1, 4)
        if m >= 2u128 << 32 {
            m >>= 1;
            result |= 1 << bit;
        }
    }
    result
}

/// `floor(2^(x / 2^16))`, the inverse of [`log2_q16`]: the largest `y` with
/// `log2_q16(y) <= x`, found by binary search (monotone, so exact and
/// platform-independent).
fn exp2_floor_q16(x: u64) -> u64 {
    let int_part = x >> 16;
    debug_assert!(int_part < 63, "exp2 overflow");
    let mut lo = 1u64 << int_part; // 2^floor(x) <= answer
    let mut hi = (lo << 1) - 1; // answer < 2^(floor(x)+1)
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if log2_q16(mid) <= x {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Scale shift of the zipf rank weights: rank 1 weighs `2^30`.
const WEIGHT_SHIFT: u64 = 30;

/// A deterministic zipfian sampler over ranks `0..pool`, with exponent given
/// in hundredths, plus the hot-key rotation of [`ZipfSkew`].
///
/// The cumulative weight table is built once (`O(pool log pool)` integer ops)
/// and sampling is a binary search over it.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    skew: ZipfSkew,
    /// Cumulative rank weights: `cumulative[r]` = total weight of ranks `0..=r`.
    cumulative: Vec<u64>,
    seed: u64,
}

impl ZipfSampler {
    /// Builds the sampler for `skew`, drawing from `seed`'s skew channel.
    pub fn new(skew: ZipfSkew, seed: u64) -> Self {
        let pool = skew.pool.max(1) as usize;
        // weight(rank r, 1-based) = 2^WEIGHT_SHIFT / r^s, via
        // r^-s = 2^(-s * log2 r) in Q16 fixed point.
        let s_q16 = (skew.exponent_hundredths as u64 * 65_536) / 100;
        let mut cumulative = Vec::with_capacity(pool);
        let mut total = 0u64;
        for rank in 1..=pool as u64 {
            let exponent_q16 = ((s_q16 as u128 * log2_q16(rank) as u128) >> 16) as u64;
            let weight = exp2_floor_q16((WEIGHT_SHIFT << 16).saturating_sub(exponent_q16)).max(1);
            total += weight;
            cumulative.push(total);
        }
        ZipfSampler { skew, cumulative, seed: seed ^ SKEW_SALT }
    }

    /// The configured skew.
    pub fn skew(&self) -> &ZipfSkew {
        &self.skew
    }

    /// Returns `true` iff the skew is active at event time `at_ms`.
    pub fn active_at(&self, at_ms: u64) -> bool {
        at_ms >= self.skew.onset_ms
    }

    /// Samples a zipf rank (0 = hottest) for the event at `index`.
    pub fn rank(&self, index: u64) -> u64 {
        let total = *self.cumulative.last().expect("non-empty weight table");
        let draw = mix(self.seed, index) % total;
        self.cumulative.partition_point(|&c| c <= draw) as u64
    }

    /// The rotation offset at event time `at_ms`: a deterministic jump of the
    /// rank-to-key mapping per rotation period.
    pub fn rotation_offset(&self, at_ms: u64) -> u64 {
        if self.skew.rotate_every_ms == 0 {
            return 0;
        }
        let rotation = at_ms / self.skew.rotate_every_ms;
        if rotation == 0 {
            0
        } else {
            mix(self.seed ^ 0x0000_0000_0070_7a7e, rotation)
        }
    }

    /// Maps the event at `index` (event time `at_ms`) to a key offset in
    /// `0..available`: the sampled rank, rotated by the current rotation, and
    /// clamped to the keys that exist so far.
    pub fn key_offset(&self, index: u64, at_ms: u64, available: u64) -> u64 {
        let available = available.max(1);
        let rank = self.rank(index) % available;
        // Reduce the (full-range) rotation offset before adding so the sum
        // cannot overflow; modular arithmetic makes the result identical.
        (rank + self.rotation_offset(at_ms) % available) % available
    }
}

/// Bounded out-of-order replay: a deterministic permutation of the event
/// stream in which every event stays within `lag_ms` of event time of its
/// in-order position.
///
/// The permutation shuffles each consecutive block of
/// `lag_ms * events_per_second / 1000` indices independently (seeded
/// Fisher–Yates per block), so displacement is bounded by one block — i.e. by
/// `lag_ms` — and any suffix of blocks is reproducible without generating the
/// prefix. The replayer caches the most recent block's permutation, making
/// sequential drivers O(1) amortized per event.
#[derive(Clone, Debug)]
pub struct OutOfOrderReplay {
    block_len: u64,
    seed: u64,
    /// The most recently materialized block: `(block index, permutation)`.
    cached: Option<(u64, Vec<u32>)>,
}

impl OutOfOrderReplay {
    /// Builds a replayer for `mode` at `events_per_second`, drawing from
    /// `seed`'s shuffle channel.
    pub fn new(mode: OutOfOrder, events_per_second: u64, seed: u64) -> Self {
        // A block spans at most `lag_ms` of event time; at least 2 events so
        // the mode is never a silent no-op.
        let block_len = (mode.lag_ms * events_per_second / 1_000).max(2);
        OutOfOrderReplay { block_len, seed: seed ^ SHUFFLE_SALT, cached: None }
    }

    /// The number of events shuffled together (one lag window).
    pub fn block_len(&self) -> u64 {
        self.block_len
    }

    /// The in-order event index emitted at stream `position`.
    pub fn source_index(&mut self, position: u64) -> u64 {
        let block = position / self.block_len;
        let offset = (position % self.block_len) as usize;
        if self.cached.as_ref().map(|(b, _)| *b) != Some(block) {
            self.cached = Some((block, self.permutation(block)));
        }
        let (_, permutation) = self.cached.as_ref().expect("block just cached");
        block * self.block_len + permutation[offset] as u64
    }

    /// The seeded Fisher–Yates permutation of one block.
    fn permutation(&self, block: u64) -> Vec<u32> {
        let len = self.block_len as usize;
        let mut permutation: Vec<u32> = (0..len as u32).collect();
        let seed = mix(self.seed, block);
        for i in (1..len).rev() {
            let j = (mix(seed, i as u64) % (i as u64 + 1)) as usize;
            permutation.swap(i, j);
        }
        permutation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference log2 via f64, used only to sanity-bound the integer version.
    fn log2_reference(x: u64) -> f64 {
        (x as f64).log2()
    }

    #[test]
    fn log2_q16_matches_reference_within_one_ulp16() {
        for x in [1u64, 2, 3, 7, 10, 100, 1_000, 65_535, 1 << 40] {
            let got = log2_q16(x) as f64 / 65_536.0;
            let want = log2_reference(x);
            assert!((got - want).abs() < 2.0 / 65_536.0, "log2({x}): {got} vs {want}");
        }
    }

    #[test]
    fn exp2_inverts_log2() {
        // exp2_floor(log2_q16(x)) is the largest integer sharing x's Q16 log:
        // at least x, and within one Q16 quantization step of it.
        for x in [1u64, 2, 3, 10, 1_000, 123_456] {
            let y = exp2_floor_q16(log2_q16(x));
            assert!(y >= x, "exp2(log2({x})) = {y} fell below x");
            assert_eq!(log2_q16(y), log2_q16(x), "exp2(log2({x})) = {y} left the bucket");
        }
        assert_eq!(exp2_floor_q16(0), 1);
        assert_eq!(exp2_floor_q16(3 << 16), 8);
    }

    #[test]
    fn zipf_weights_decrease_and_dominate() {
        let sampler = ZipfSampler::new(
            ZipfSkew { exponent_hundredths: 120, pool: 64, onset_ms: 0, rotate_every_ms: 0 },
            42,
        );
        // Rank weights decrease.
        let weights: Vec<u64> = sampler
            .cumulative
            .iter()
            .scan(0u64, |prev, &c| {
                let w = c - *prev;
                *prev = c;
                Some(w)
            })
            .collect();
        for pair in weights.windows(2) {
            assert!(pair[0] >= pair[1], "weights must be non-increasing: {pair:?}");
        }
        // Rank 0 takes a dominant share under s = 1.2 over 64 keys.
        let total = *sampler.cumulative.last().unwrap();
        assert!(weights[0] as f64 / total as f64 > 0.2, "rank 0 share too small");
        // Sampling concentrates on the head.
        let mut head = 0u64;
        for index in 0..10_000u64 {
            if sampler.rank(index) < 4 {
                head += 1;
            }
        }
        assert!(head > 4_000, "top-4 ranks must absorb a large share, got {head}");
    }

    #[test]
    fn rotation_changes_the_hot_keys() {
        let sampler = ZipfSampler::new(
            ZipfSkew { exponent_hundredths: 150, pool: 128, onset_ms: 0, rotate_every_ms: 1_000 },
            7,
        );
        assert_eq!(sampler.rotation_offset(500), 0, "rotation 0 is the identity");
        let first = sampler.rotation_offset(1_500) % 128;
        let second = sampler.rotation_offset(2_500) % 128;
        assert_ne!(first, 0);
        assert_ne!(first, second, "consecutive rotations must move the hot set");
        // Same event, same available pool, different rotation epoch => new key.
        assert_ne!(sampler.key_offset(3, 500, 128), sampler.key_offset(3, 1_500, 128));
    }

    #[test]
    fn key_offsets_respect_the_available_pool() {
        let sampler = ZipfSampler::new(ZipfSkew { pool: 1_000, ..ZipfSkew::default() }, 1);
        for index in 0..1_000u64 {
            assert!(sampler.key_offset(index, 0, 10) < 10);
            assert!(sampler.key_offset(index, 0, 1) == 0);
        }
    }

    #[test]
    fn replay_is_a_bounded_block_permutation() {
        let mut replay = OutOfOrderReplay::new(OutOfOrder { lag_ms: 100 }, 1_000, 99);
        assert_eq!(replay.block_len(), 100);
        let n = 1_000u64;
        let mut sources: Vec<u64> = (0..n).map(|p| replay.source_index(p)).collect();
        for (position, &source) in sources.iter().enumerate() {
            assert_eq!(position as u64 / 100, source / 100, "sources stay in their block");
        }
        sources.sort_unstable();
        assert_eq!(sources, (0..n).collect::<Vec<u64>>(), "replay must be a permutation");
    }

    #[test]
    fn replay_random_access_matches_sequential() {
        let mut a = OutOfOrderReplay::new(OutOfOrder { lag_ms: 50 }, 2_000, 5);
        let mut b = OutOfOrderReplay::new(OutOfOrder { lag_ms: 50 }, 2_000, 5);
        let sequential: Vec<u64> = (0..500).map(|p| a.source_index(p)).collect();
        // Access out of cache order: backwards.
        for position in (0..500u64).rev() {
            assert_eq!(b.source_index(position), sequential[position as usize]);
        }
    }

    #[test]
    fn tiny_lags_still_shuffle() {
        let mut replay = OutOfOrderReplay::new(OutOfOrder { lag_ms: 0 }, 1_000, 3);
        assert_eq!(replay.block_len(), 2, "lag below one event still permutes pairs");
        let mut sources: Vec<u64> = (0..10).map(|p| replay.source_index(p)).collect();
        sources.sort_unstable();
        assert_eq!(sources, (0..10).collect::<Vec<u64>>());
    }
}
