//! A deterministic NEXMark event generator.
//!
//! The generator is a pure function of `(config, event index)`, so that every
//! worker can generate its own disjoint partition of the stream without
//! coordination and experiments are reproducible across runs.

use crate::config::NexmarkConfig;
use crate::event::{Auction, Bid, Event, Person};

const FIRST_PERSON_ID: u64 = 1_000;
const FIRST_AUCTION_ID: u64 = 10_000;
const FIRST_CATEGORY_ID: u64 = 10;

const NAMES: [&str; 10] =
    ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy"];
const CITIES: [&str; 8] =
    ["zurich", "geneva", "basel", "bern", "lausanne", "lugano", "lucerne", "st-gallen"];
const STATES: [&str; 6] = ["OR", "ID", "CA", "WA", "NV", "AZ"];

/// A deterministic pseudo-random permutation used to pick sellers, bidders and
/// auctions without shared state (splitmix64).
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed.wrapping_add(value).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic NEXMark event generator.
#[derive(Clone, Copy, Debug)]
pub struct NexmarkGenerator {
    config: NexmarkConfig,
}

impl NexmarkGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: NexmarkConfig) -> Self {
        NexmarkGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &NexmarkConfig {
        &self.config
    }

    /// The number of people among the first `index` events.
    fn people_before(&self, index: u64) -> u64 {
        let config = &self.config;
        let whole = index / config.proportion_denominator;
        let rest = index % config.proportion_denominator;
        whole * config.person_proportion + rest.min(config.person_proportion)
    }

    /// The number of auctions among the first `index` events.
    fn auctions_before(&self, index: u64) -> u64 {
        let config = &self.config;
        let whole = index / config.proportion_denominator;
        let rest = index % config.proportion_denominator;
        let in_rest = rest
            .saturating_sub(config.person_proportion)
            .min(config.auction_proportion);
        whole * config.auction_proportion + in_rest
    }

    /// Generates event number `index`.
    pub fn event(&self, index: u64) -> Event {
        let config = &self.config;
        let position = index % config.proportion_denominator;
        let time = config.event_time(index);
        let seed = config.seed;
        if position < config.person_proportion {
            let id = FIRST_PERSON_ID + self.people_before(index);
            let pick = mix(seed, index);
            Event::Person(Person {
                id,
                name: format!("{}-{}", NAMES[(pick % NAMES.len() as u64) as usize], id),
                city: CITIES[((pick >> 8) % CITIES.len() as u64) as usize].to_string(),
                state: STATES[((pick >> 16) % STATES.len() as u64) as usize].to_string(),
                date_time: time,
            })
        } else if position < config.person_proportion + config.auction_proportion {
            let id = FIRST_AUCTION_ID + self.auctions_before(index);
            let people = self.people_before(index).max(1);
            let pick = mix(seed, index);
            let seller = FIRST_PERSON_ID + pick % people;
            Event::Auction(Auction {
                id,
                seller,
                category: FIRST_CATEGORY_ID + (pick >> 20) % config.num_categories,
                initial_bid: 100 + (pick >> 8) % 900,
                reserve: 1_000 + (pick >> 12) % 9_000,
                date_time: time,
                expires: time + config.auction_duration_ms,
            })
        } else {
            let auctions = self.auctions_before(index).max(1);
            let people = self.people_before(index).max(1);
            let pick = mix(seed, index);
            // Bids favour recent ("hot") auctions, like the reference generator.
            let auction = if pick.is_multiple_of(config.hot_auction_ratio) {
                FIRST_AUCTION_ID + auctions - 1 - (pick >> 4) % auctions.min(config.in_flight_auctions)
            } else {
                FIRST_AUCTION_ID + (pick >> 4) % auctions
            };
            Event::Bid(Bid {
                auction,
                bidder: FIRST_PERSON_ID + (pick >> 24) % people,
                price: 100 + (pick >> 32) % 10_000,
                date_time: time,
            })
        }
    }

    /// Generates the events with indices in `range`.
    pub fn events(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Event> + '_ {
        range.map(move |index| self.event(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let a: Vec<Event> = generator.events(0..1_000).collect();
        let b: Vec<Event> = generator.events(0..1_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn proportions_are_respected() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let events: Vec<Event> = generator.events(0..5_000).collect();
        let people = events.iter().filter(|e| matches!(e, Event::Person(_))).count();
        let auctions = events.iter().filter(|e| matches!(e, Event::Auction(_))).count();
        let bids = events.iter().filter(|e| matches!(e, Event::Bid(_))).count();
        assert_eq!(people, 100);
        assert_eq!(auctions, 300);
        assert_eq!(bids, 4_600);
    }

    #[test]
    fn event_times_are_nondecreasing() {
        let generator = NexmarkGenerator::new(NexmarkConfig::with_rate(10_000));
        let mut previous = 0;
        for event in generator.events(0..10_000) {
            assert!(event.time() >= previous);
            previous = event.time();
        }
    }

    #[test]
    fn bids_reference_existing_auctions_and_people() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let events: Vec<Event> = generator.events(0..10_000).collect();
        let max_person = events
            .iter()
            .filter_map(|e| match e {
                Event::Person(p) => Some(p.id),
                _ => None,
            })
            .max()
            .expect("people generated");
        let max_auction = events
            .iter()
            .filter_map(|e| match e {
                Event::Auction(a) => Some(a.id),
                _ => None,
            })
            .max()
            .expect("auctions generated");
        for event in &events {
            if let Event::Bid(bid) = event {
                assert!(bid.auction <= max_auction);
                assert!(bid.bidder <= max_person);
            }
            if let Event::Auction(auction) = event {
                assert!(auction.seller <= max_person);
                assert!(auction.expires > auction.date_time);
            }
        }
    }

    #[test]
    fn ids_are_dense_and_increasing() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let person_ids: Vec<u64> = generator
            .events(0..5_000)
            .filter_map(|e| e.person().map(|p| p.id))
            .collect();
        for window in person_ids.windows(2) {
            assert_eq!(window[1], window[0] + 1);
        }
    }
}
