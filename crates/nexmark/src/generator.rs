//! A deterministic NEXMark event generator.
//!
//! The generator is a pure function of `(config, event index)`, so that every
//! worker can generate its own disjoint partition of the stream without
//! coordination and experiments are reproducible across runs.

use crate::config::NexmarkConfig;
use crate::event::{Auction, Bid, Event, Person};

const FIRST_PERSON_ID: u64 = 1_000;
const FIRST_AUCTION_ID: u64 = 10_000;
const FIRST_CATEGORY_ID: u64 = 10;

const NAMES: [&str; 10] =
    ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy"];
const CITIES: [&str; 8] =
    ["zurich", "geneva", "basel", "bern", "lausanne", "lugano", "lucerne", "st-gallen"];
const STATES: [&str; 6] = ["OR", "ID", "CA", "WA", "NV", "AZ"];

/// A deterministic pseudo-random permutation used to pick sellers, bidders and
/// auctions without shared state (splitmix64); the workload engine draws from
/// the same primitive on salted seed channels.
use crate::workload::mix;

/// The deterministic NEXMark event generator.
#[derive(Clone, Copy, Debug)]
pub struct NexmarkGenerator {
    config: NexmarkConfig,
}

impl NexmarkGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: NexmarkConfig) -> Self {
        NexmarkGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &NexmarkConfig {
        &self.config
    }

    /// The number of people among the first `index` events.
    fn people_before(&self, index: u64) -> u64 {
        let config = &self.config;
        let whole = index / config.proportion_denominator;
        let rest = index % config.proportion_denominator;
        whole * config.person_proportion + rest.min(config.person_proportion)
    }

    /// The number of auctions among the first `index` events.
    fn auctions_before(&self, index: u64) -> u64 {
        let config = &self.config;
        let whole = index / config.proportion_denominator;
        let rest = index % config.proportion_denominator;
        let in_rest = rest
            .saturating_sub(config.person_proportion)
            .min(config.auction_proportion);
        whole * config.auction_proportion + in_rest
    }

    /// Generates event number `index`.
    pub fn event(&self, index: u64) -> Event {
        let config = &self.config;
        let position = index % config.proportion_denominator;
        let time = config.event_time(index);
        let seed = config.seed;
        if position < config.person_proportion {
            let id = FIRST_PERSON_ID + self.people_before(index);
            let pick = mix(seed, index);
            Event::Person(Person {
                id,
                name: format!("{}-{}", NAMES[(pick % NAMES.len() as u64) as usize], id),
                city: CITIES[((pick >> 8) % CITIES.len() as u64) as usize].to_string(),
                state: STATES[((pick >> 16) % STATES.len() as u64) as usize].to_string(),
                date_time: time,
            })
        } else if position < config.person_proportion + config.auction_proportion {
            let id = FIRST_AUCTION_ID + self.auctions_before(index);
            let people = self.people_before(index).max(1);
            let pick = mix(seed, index);
            let seller = FIRST_PERSON_ID + pick % people;
            Event::Auction(Auction {
                id,
                seller,
                category: FIRST_CATEGORY_ID + (pick >> 20) % config.num_categories,
                initial_bid: 100 + (pick >> 8) % 900,
                reserve: 1_000 + (pick >> 12) % 9_000,
                date_time: time,
                expires: time + config.auction_duration_ms,
            })
        } else {
            let auctions = self.auctions_before(index).max(1);
            let people = self.people_before(index).max(1);
            let pick = mix(seed, index);
            // Bids favour recent ("hot") auctions, like the reference generator.
            let auction = if pick.is_multiple_of(config.hot_auction_ratio) {
                FIRST_AUCTION_ID + auctions - 1 - (pick >> 4) % auctions.min(config.in_flight_auctions)
            } else {
                FIRST_AUCTION_ID + (pick >> 4) % auctions
            };
            Event::Bid(Bid {
                auction,
                bidder: FIRST_PERSON_ID + (pick >> 24) % people,
                price: 100 + (pick >> 32) % 10_000,
                date_time: time,
            })
        }
    }

    /// Generates the events with indices in `range`.
    pub fn events(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Event> + '_ {
        range.map(move |index| self.event(index))
    }
}

/// The adversarial generator: the core [`NexmarkGenerator`] with the
/// configuration's [`Workload`](crate::config::Workload) modes applied.
///
/// * **Zipfian skew** rewrites the auction of each bid past the skew's onset
///   to a zipf-sampled member of a stable pool of early auctions (rotated on
///   hot-key rotation boundaries). Everything else about the event — bidder,
///   price, event time — is untouched, so referential integrity and the
///   stream's time structure are preserved.
/// * **Out-of-order replay** permutes which event is emitted at each stream
///   position, bounded by the mode's lag; [`WorkloadGenerator::event_at`]
///   takes an emission *position* and resolves the (possibly displaced)
///   source event itself.
/// * **Rate bursts** do not change individual events; drivers multiply their
///   per-epoch emission quota by
///   [`Workload::burst_factor`](crate::config::Workload::burst_factor).
///
/// Like the core generator, the whole construction is a deterministic pure
/// function of `(config, position)` — two instances over the same
/// configuration emit bit-identical streams.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    inner: NexmarkGenerator,
    zipf: Option<crate::workload::ZipfSampler>,
    replay: Option<crate::workload::OutOfOrderReplay>,
}

impl WorkloadGenerator {
    /// Creates a generator for `config`, wiring up its workload modes.
    pub fn new(config: NexmarkConfig) -> Self {
        let zipf = config
            .workload
            .skew
            .map(|skew| crate::workload::ZipfSampler::new(skew, config.seed));
        let replay = config.workload.out_of_order.map(|mode| {
            crate::workload::OutOfOrderReplay::new(mode, config.events_per_second, config.seed)
        });
        WorkloadGenerator { inner: NexmarkGenerator::new(config), zipf, replay }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &NexmarkConfig {
        self.inner.config()
    }

    /// The in-order generator beneath the workload modes.
    pub fn inner(&self) -> &NexmarkGenerator {
        &self.inner
    }

    /// The in-order event index emitted at stream `position` (identity unless
    /// out-of-order replay is enabled).
    pub fn source_index(&mut self, position: u64) -> u64 {
        match self.replay.as_mut() {
            Some(replay) => replay.source_index(position),
            None => position,
        }
    }

    /// The event emitted at stream `position`: the out-of-order permutation
    /// picks the source event, then the zipfian skew (if active at the event's
    /// time) rewrites bid targets.
    pub fn event_at(&mut self, position: u64) -> Event {
        let index = self.source_index(position);
        let mut event = self.inner.event(index);
        if let (Some(zipf), Event::Bid(bid)) = (self.zipf.as_ref(), &mut event) {
            if zipf.active_at(bid.date_time) {
                let available = self
                    .inner
                    .auctions_before(index)
                    .max(1)
                    .min(zipf.skew().pool.max(1));
                bid.auction =
                    FIRST_AUCTION_ID + zipf.key_offset(index, bid.date_time, available);
            }
        }
        event
    }

    /// The events emitted at the positions in `range`, in emission order.
    pub fn events_at(&mut self, range: std::ops::Range<u64>) -> Vec<Event> {
        range.map(|position| self.event_at(position)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let a: Vec<Event> = generator.events(0..1_000).collect();
        let b: Vec<Event> = generator.events(0..1_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn proportions_are_respected() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let events: Vec<Event> = generator.events(0..5_000).collect();
        let people = events.iter().filter(|e| matches!(e, Event::Person(_))).count();
        let auctions = events.iter().filter(|e| matches!(e, Event::Auction(_))).count();
        let bids = events.iter().filter(|e| matches!(e, Event::Bid(_))).count();
        assert_eq!(people, 100);
        assert_eq!(auctions, 300);
        assert_eq!(bids, 4_600);
    }

    #[test]
    fn event_times_are_nondecreasing() {
        let generator = NexmarkGenerator::new(NexmarkConfig::with_rate(10_000));
        let mut previous = 0;
        for event in generator.events(0..10_000) {
            assert!(event.time() >= previous);
            previous = event.time();
        }
    }

    #[test]
    fn bids_reference_existing_auctions_and_people() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let events: Vec<Event> = generator.events(0..10_000).collect();
        let max_person = events
            .iter()
            .filter_map(|e| match e {
                Event::Person(p) => Some(p.id),
                _ => None,
            })
            .max()
            .expect("people generated");
        let max_auction = events
            .iter()
            .filter_map(|e| match e {
                Event::Auction(a) => Some(a.id),
                _ => None,
            })
            .max()
            .expect("auctions generated");
        for event in &events {
            if let Event::Bid(bid) = event {
                assert!(bid.auction <= max_auction);
                assert!(bid.bidder <= max_person);
            }
            if let Event::Auction(auction) = event {
                assert!(auction.seller <= max_person);
                assert!(auction.expires > auction.date_time);
            }
        }
    }

    #[test]
    fn ids_are_dense_and_increasing() {
        let generator = NexmarkGenerator::new(NexmarkConfig::default());
        let person_ids: Vec<u64> = generator
            .events(0..5_000)
            .filter_map(|e| e.person().map(|p| p.id))
            .collect();
        for window in person_ids.windows(2) {
            assert_eq!(window[1], window[0] + 1);
        }
    }
}
