//! The NEXMark benchmark suite for the Megaphone reproduction.
//!
//! NEXMark models an online auction site: a single stream of person, auction
//! and bid events, over which eight standing queries are maintained (Section
//! 5.1 of the Megaphone paper). This crate provides:
//!
//! * a deterministic, rate-controlled [event generator](generator),
//! * composable adversarial [`Workload`] modes — zipfian key skew with
//!   hot-key rotation, bounded out-of-order replay, rate bursts — applied by
//!   the [`WorkloadGenerator`] over the pure-integer [`workload`] engine,
//! * the eight queries implemented with Megaphone's migrateable operators
//!   ([`queries`]), and
//! * hand-tuned "native" implementations on plain `timelite` operators
//!   ([`queries::native`]) used as the overhead baseline and for the
//!   lines-of-code comparison (Table 1).

#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod generator;
pub mod queries;
pub mod workload;

pub use config::{NexmarkConfig, OutOfOrder, RateBurst, Workload, ZipfSkew};
pub use event::{Auction, Bid, Event, Person};
pub use generator::{NexmarkGenerator, WorkloadGenerator};
pub use workload::{OutOfOrderReplay, ZipfSampler};
pub use queries::{build_native_query, build_query, QueryOutput, Time, QUERIES};
