//! NEXMark events: people, auctions and bids.
//!
//! The NEXMark benchmark models an online auction site. Three kinds of events
//! arrive on one stream: new people registering, new auctions being opened by a
//! seller, and bids placed on auctions. The queries (Q1–Q8) are standing
//! relational queries over this stream.

use megaphone::Codec;

/// A person registering with the auction site.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Person {
    /// Unique person identifier.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// City of residence.
    pub city: String,
    /// State (two-letter code) of residence.
    pub state: String,
    /// Event time in milliseconds.
    pub date_time: u64,
}

/// An auction opened by a seller.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Auction {
    /// Unique auction identifier.
    pub id: u64,
    /// The person selling the item.
    pub seller: u64,
    /// The item's category.
    pub category: u64,
    /// The opening bid in cents.
    pub initial_bid: u64,
    /// The reserve price in cents.
    pub reserve: u64,
    /// Event time in milliseconds.
    pub date_time: u64,
    /// The time at which the auction closes, in milliseconds.
    pub expires: u64,
}

/// A bid on an auction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Bid {
    /// The auction being bid on.
    pub auction: u64,
    /// The bidding person.
    pub bidder: u64,
    /// The bid price in cents.
    pub price: u64,
    /// Event time in milliseconds.
    pub date_time: u64,
}

/// Any NEXMark event.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// A new person.
    Person(Person),
    /// A new auction.
    Auction(Auction),
    /// A new bid.
    Bid(Bid),
}

impl Event {
    /// The event time in milliseconds.
    pub fn time(&self) -> u64 {
        match self {
            Event::Person(person) => person.date_time,
            Event::Auction(auction) => auction.date_time,
            Event::Bid(bid) => bid.date_time,
        }
    }

    /// The contained person, if any.
    pub fn person(self) -> Option<Person> {
        match self {
            Event::Person(person) => Some(person),
            _ => None,
        }
    }

    /// The contained auction, if any.
    pub fn auction(self) -> Option<Auction> {
        match self {
            Event::Auction(auction) => Some(auction),
            _ => None,
        }
    }

    /// The contained bid, if any.
    pub fn bid(self) -> Option<Bid> {
        match self {
            Event::Bid(bid) => Some(bid),
            _ => None,
        }
    }
}

impl Codec for Person {
    fn encode(&self, bytes: &mut Vec<u8>) {
        self.id.encode(bytes);
        self.name.encode(bytes);
        self.city.encode(bytes);
        self.state.encode(bytes);
        self.date_time.encode(bytes);
    }
    fn decode(bytes: &mut &[u8]) -> Self {
        Person {
            id: u64::decode(bytes),
            name: String::decode(bytes),
            city: String::decode(bytes),
            state: String::decode(bytes),
            date_time: u64::decode(bytes),
        }
    }
}

impl Codec for Auction {
    fn encode(&self, bytes: &mut Vec<u8>) {
        self.id.encode(bytes);
        self.seller.encode(bytes);
        self.category.encode(bytes);
        self.initial_bid.encode(bytes);
        self.reserve.encode(bytes);
        self.date_time.encode(bytes);
        self.expires.encode(bytes);
    }
    fn decode(bytes: &mut &[u8]) -> Self {
        Auction {
            id: u64::decode(bytes),
            seller: u64::decode(bytes),
            category: u64::decode(bytes),
            initial_bid: u64::decode(bytes),
            reserve: u64::decode(bytes),
            date_time: u64::decode(bytes),
            expires: u64::decode(bytes),
        }
    }
}

impl Codec for Bid {
    fn encode(&self, bytes: &mut Vec<u8>) {
        self.auction.encode(bytes);
        self.bidder.encode(bytes);
        self.price.encode(bytes);
        self.date_time.encode(bytes);
    }
    fn decode(bytes: &mut &[u8]) -> Self {
        Bid {
            auction: u64::decode(bytes),
            bidder: u64::decode(bytes),
            price: u64::decode(bytes),
            date_time: u64::decode(bytes),
        }
    }
}

impl Codec for Event {
    fn encode(&self, bytes: &mut Vec<u8>) {
        match self {
            Event::Person(person) => {
                0u8.encode(bytes);
                person.encode(bytes);
            }
            Event::Auction(auction) => {
                1u8.encode(bytes);
                auction.encode(bytes);
            }
            Event::Bid(bid) => {
                2u8.encode(bytes);
                bid.encode(bytes);
            }
        }
    }
    fn decode(bytes: &mut &[u8]) -> Self {
        match u8::decode(bytes) {
            0 => Event::Person(Person::decode(bytes)),
            1 => Event::Auction(Auction::decode(bytes)),
            _ => Event::Bid(Bid::decode(bytes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_codec() {
        let person = Person {
            id: 1,
            name: "alice".into(),
            city: "zurich".into(),
            state: "OR".into(),
            date_time: 7,
        };
        let auction = Auction {
            id: 2,
            seller: 1,
            category: 10,
            initial_bid: 100,
            reserve: 200,
            date_time: 8,
            expires: 90,
        };
        let bid = Bid { auction: 2, bidder: 1, price: 150, date_time: 9 };
        for event in [Event::Person(person), Event::Auction(auction), Event::Bid(bid)] {
            let bytes = event.encode_to_vec();
            assert_eq!(Event::decode_from_slice(&bytes), event);
        }
    }

    #[test]
    fn event_accessors() {
        let bid = Bid { auction: 2, bidder: 1, price: 150, date_time: 9 };
        let event = Event::Bid(bid);
        assert_eq!(event.time(), 9);
        assert_eq!(event.clone().bid(), Some(bid));
        assert_eq!(event.person(), None);
    }
}
