//! NEXMark generator configuration.

/// Configuration of the NEXMark event generator.
///
/// The proportions follow the original NEXMark specification: out of every 50
/// events, 1 is a person, 3 are auctions and 46 are bids. Because the number of
/// in-flight auctions is intrinsically bounded, playing the generator faster
/// shortens auction durations; queries with long windows (Q5, Q8) therefore use
/// a time-dilation factor, as in Section 5.1 of the Megaphone paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NexmarkConfig {
    /// Events generated per second of event time.
    pub events_per_second: u64,
    /// Out of `proportion_denominator` events, how many are people.
    pub person_proportion: u64,
    /// Out of `proportion_denominator` events, how many are auctions.
    pub auction_proportion: u64,
    /// The denominator of the proportions (people + auctions + bids).
    pub proportion_denominator: u64,
    /// Number of auctions kept active for bid generation.
    pub in_flight_auctions: u64,
    /// Number of distinct categories.
    pub num_categories: u64,
    /// Average auction duration in milliseconds of event time.
    pub auction_duration_ms: u64,
    /// Hot-auction ratio: 1 in `hot_auction_ratio` bids goes to a recent auction.
    pub hot_auction_ratio: u64,
    /// Factor by which windowed queries dilate event time (Q5, Q8).
    pub time_dilation: u64,
    /// Random seed for deterministic generation.
    pub seed: u64,
}

impl Default for NexmarkConfig {
    fn default() -> Self {
        NexmarkConfig {
            events_per_second: 100_000,
            person_proportion: 1,
            auction_proportion: 3,
            proportion_denominator: 50,
            in_flight_auctions: 100,
            num_categories: 5,
            auction_duration_ms: 10_000,
            hot_auction_ratio: 2,
            time_dilation: 1,
            seed: 0x5eed_cafe,
        }
    }
}

impl NexmarkConfig {
    /// A configuration producing `events_per_second` events per second.
    pub fn with_rate(events_per_second: u64) -> Self {
        NexmarkConfig { events_per_second, ..Default::default() }
    }

    /// The event time (milliseconds) of event `index`.
    pub fn event_time(&self, index: u64) -> u64 {
        index * 1_000 / self.events_per_second.max(1)
    }

    /// Number of bids out of each `proportion_denominator` events.
    pub fn bid_proportion(&self) -> u64 {
        self.proportion_denominator - self.person_proportion - self.auction_proportion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_proportions_match_nexmark() {
        let config = NexmarkConfig::default();
        assert_eq!(config.person_proportion, 1);
        assert_eq!(config.auction_proportion, 3);
        assert_eq!(config.bid_proportion(), 46);
    }

    #[test]
    fn event_times_follow_rate() {
        let config = NexmarkConfig::with_rate(1_000);
        assert_eq!(config.event_time(0), 0);
        assert_eq!(config.event_time(1_000), 1_000);
        assert_eq!(config.event_time(500), 500);
    }
}
