//! NEXMark generator configuration, including the adversarial
//! [`Workload`] modes (zipfian key skew, out-of-order replay, rate bursts).

/// Zipfian key skew over the bid stream: bids concentrate on a fixed pool of
/// auctions with zipf-distributed popularity, optionally rotating which
/// auctions are hot mid-run.
///
/// The skew targets the *earliest* auctions (which exist from the start of the
/// stream), so the hot key set is stable over time — exactly the workload
/// under which a static round-robin bin assignment accumulates imbalance and a
/// load-aware controller has something to react to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZipfSkew {
    /// Zipf exponent in hundredths: `120` means `s = 1.20`.
    pub exponent_hundredths: u32,
    /// Number of distinct auctions the zipf ranks map onto (clamped to the
    /// auctions generated so far, preserving referential integrity).
    pub pool: u64,
    /// Event time (ms) at which the skew switches on; bids before it stay
    /// uniform, so a run has an unskewed baseline phase.
    pub onset_ms: u64,
    /// Rotate the rank-to-auction mapping every this many ms of event time
    /// (`0` = never): the hot auctions jump to a different subset of the pool,
    /// invalidating whatever placement a controller had converged to.
    pub rotate_every_ms: u64,
}

impl Default for ZipfSkew {
    fn default() -> Self {
        ZipfSkew { exponent_hundredths: 120, pool: 256, onset_ms: 0, rotate_every_ms: 0 }
    }
}

/// Bounded out-of-order replay: events are emitted in a deterministic shuffle
/// of the in-order stream such that no event appears more than `lag_ms` of
/// event time away from its in-order position (a watermark-lagged window).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfOrder {
    /// Maximum event-time displacement, in milliseconds.
    pub lag_ms: u64,
}

/// Periodic rate bursts: every `period_ms` of the driver's clock, the offered
/// rate is multiplied by `factor` for `burst_ms`.
///
/// Bursts are a *driver-side* mode: the driver multiplies its per-epoch
/// emission quota by [`Workload::burst_factor`], sampled with its epoch
/// (processing) time. Because extra events consume extra stream positions,
/// the stream's event time runs ahead of the epoch clock during a burst —
/// a burst is a flood of data arriving earlier than its event time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateBurst {
    /// Distance between burst starts, in milliseconds of the driver's clock.
    pub period_ms: u64,
    /// Length of each burst, in milliseconds.
    pub burst_ms: u64,
    /// Rate multiplier during a burst (`1` disables the mode).
    pub factor: u64,
}

/// Composable adversarial workload modes layered on the core generator.
///
/// Each mode is independent and optional; the default ([`Workload::default`])
/// enables none of them, reproducing the uniform, in-order stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Workload {
    /// Zipfian bid skew with optional mid-run hot-key rotation.
    pub skew: Option<ZipfSkew>,
    /// Bounded out-of-order replay.
    pub out_of_order: Option<OutOfOrder>,
    /// Periodic rate bursts.
    pub bursts: Option<RateBurst>,
}

impl Workload {
    /// The offered-rate multiplier at driver (epoch) time `at_ms` (1 outside
    /// bursts).
    pub fn burst_factor(&self, at_ms: u64) -> u64 {
        match self.bursts {
            Some(burst) if burst.period_ms > 0 && at_ms % burst.period_ms < burst.burst_ms => {
                burst.factor.max(1)
            }
            _ => 1,
        }
    }

    /// Returns `true` iff no mode is enabled (the stream is uniform, in-order
    /// and unbursty).
    pub fn is_plain(&self) -> bool {
        self.skew.is_none() && self.out_of_order.is_none() && self.bursts.is_none()
    }
}

/// Configuration of the NEXMark event generator.
///
/// The proportions follow the original NEXMark specification: out of every 50
/// events, 1 is a person, 3 are auctions and 46 are bids. Because the number of
/// in-flight auctions is intrinsically bounded, playing the generator faster
/// shortens auction durations; queries with long windows (Q5, Q8) therefore use
/// a time-dilation factor, as in Section 5.1 of the Megaphone paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NexmarkConfig {
    /// Events generated per second of event time.
    pub events_per_second: u64,
    /// Out of `proportion_denominator` events, how many are people.
    pub person_proportion: u64,
    /// Out of `proportion_denominator` events, how many are auctions.
    pub auction_proportion: u64,
    /// The denominator of the proportions (people + auctions + bids).
    pub proportion_denominator: u64,
    /// Number of auctions kept active for bid generation.
    pub in_flight_auctions: u64,
    /// Number of distinct categories.
    pub num_categories: u64,
    /// Average auction duration in milliseconds of event time.
    pub auction_duration_ms: u64,
    /// Hot-auction ratio: 1 in `hot_auction_ratio` bids goes to a recent auction.
    pub hot_auction_ratio: u64,
    /// Factor by which windowed queries dilate event time (Q5, Q8).
    pub time_dilation: u64,
    /// Random seed for deterministic generation.
    pub seed: u64,
    /// Adversarial workload modes (skew, out-of-order, bursts); the default
    /// enables none of them.
    pub workload: Workload,
}

impl Default for NexmarkConfig {
    fn default() -> Self {
        NexmarkConfig {
            events_per_second: 100_000,
            person_proportion: 1,
            auction_proportion: 3,
            proportion_denominator: 50,
            in_flight_auctions: 100,
            num_categories: 5,
            auction_duration_ms: 10_000,
            hot_auction_ratio: 2,
            time_dilation: 1,
            seed: 0x5eed_cafe,
            workload: Workload::default(),
        }
    }
}

impl NexmarkConfig {
    /// A configuration producing `events_per_second` events per second.
    pub fn with_rate(events_per_second: u64) -> Self {
        NexmarkConfig { events_per_second, ..Default::default() }
    }

    /// Replaces the workload modes.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// The event time (milliseconds) of event `index`.
    pub fn event_time(&self, index: u64) -> u64 {
        index * 1_000 / self.events_per_second.max(1)
    }

    /// Number of bids out of each `proportion_denominator` events.
    pub fn bid_proportion(&self) -> u64 {
        self.proportion_denominator - self.person_proportion - self.auction_proportion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_proportions_match_nexmark() {
        let config = NexmarkConfig::default();
        assert_eq!(config.person_proportion, 1);
        assert_eq!(config.auction_proportion, 3);
        assert_eq!(config.bid_proportion(), 46);
    }

    #[test]
    fn event_times_follow_rate() {
        let config = NexmarkConfig::with_rate(1_000);
        assert_eq!(config.event_time(0), 0);
        assert_eq!(config.event_time(1_000), 1_000);
        assert_eq!(config.event_time(500), 500);
    }

    #[test]
    fn default_workload_is_plain() {
        assert!(NexmarkConfig::default().workload.is_plain());
        assert_eq!(Workload::default().burst_factor(123), 1);
    }

    #[test]
    fn burst_factor_follows_the_period() {
        let workload = Workload {
            bursts: Some(RateBurst { period_ms: 1_000, burst_ms: 200, factor: 4 }),
            ..Workload::default()
        };
        assert!(!workload.is_plain());
        assert_eq!(workload.burst_factor(0), 4);
        assert_eq!(workload.burst_factor(199), 4);
        assert_eq!(workload.burst_factor(200), 1);
        assert_eq!(workload.burst_factor(999), 1);
        assert_eq!(workload.burst_factor(1_050), 4);
        // A degenerate factor never slows the stream below the base rate.
        let degenerate = Workload {
            bursts: Some(RateBurst { period_ms: 100, burst_ms: 100, factor: 0 }),
            ..Workload::default()
        };
        assert_eq!(degenerate.burst_factor(50), 1);
    }
}
