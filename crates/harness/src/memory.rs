//! Process memory tracking for the memory-consumption experiment (Figure 20).
//!
//! The paper records the resident set size (RSS) of each process over time. In
//! this single-process reproduction we read `/proc/self/statm` (falling back to
//! `None` on platforms without procfs) and additionally allow experiments to
//! track logical state sizes explicitly.

/// The resident set size of the current process in bytes, if available.
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    let page_size = 4096u64;
    Some(resident_pages * page_size)
}

/// One sample of a memory timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemorySample {
    /// Nanoseconds since the start of the experiment.
    pub at_nanos: u64,
    /// Resident set size in bytes (0 if unavailable).
    pub rss_bytes: u64,
    /// Logical bytes of state tracked by the experiment (serialized state in
    /// flight plus resident bins), when the experiment reports it.
    pub tracked_bytes: u64,
}

/// A periodically sampled memory timeline.
#[derive(Clone, Debug, Default)]
pub struct MemorySeries {
    samples: Vec<MemorySample>,
}

impl MemorySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample at `at_nanos`, reading the process RSS.
    pub fn sample(&mut self, at_nanos: u64, tracked_bytes: u64) {
        self.samples.push(MemorySample {
            at_nanos,
            rss_bytes: current_rss_bytes().unwrap_or(0),
            tracked_bytes,
        });
    }

    /// Records a sample with an explicitly provided RSS (for tests).
    pub fn sample_with_rss(&mut self, at_nanos: u64, rss_bytes: u64, tracked_bytes: u64) {
        self.samples.push(MemorySample { at_nanos, rss_bytes, tracked_bytes });
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[MemorySample] {
        &self.samples
    }

    /// The peak RSS over the series.
    pub fn peak_rss(&self) -> u64 {
        self.samples.iter().map(|sample| sample.rss_bytes).max().unwrap_or(0)
    }

    /// The peak tracked state size over the series.
    pub fn peak_tracked(&self) -> u64 {
        self.samples.iter().map(|sample| sample.tracked_bytes).max().unwrap_or(0)
    }

    /// The peak tracked state within `[from_nanos, to_nanos)`.
    pub fn peak_tracked_in_window(&self, from_nanos: u64, to_nanos: u64) -> u64 {
        self.samples
            .iter()
            .filter(|sample| sample.at_nanos >= from_nanos && sample.at_nanos < to_nanos)
            .map(|sample| sample.tracked_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Formats a byte count with binary units, as in the paper's Figure 20 axis.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{:.1} {}", value, UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_available_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = current_rss_bytes().expect("procfs should be available on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn series_tracks_peaks() {
        let mut series = MemorySeries::new();
        series.sample_with_rss(0, 100, 10);
        series.sample_with_rss(10, 300, 50);
        series.sample_with_rss(20, 200, 20);
        assert_eq!(series.peak_rss(), 300);
        assert_eq!(series.peak_tracked(), 50);
        assert_eq!(series.peak_tracked_in_window(15, 25), 20);
        assert_eq!(series.samples().len(), 3);
    }

    #[test]
    fn byte_formatting_uses_binary_units() {
        assert_eq!(format_bytes(512), "512.0 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }
}
