//! Multi-process cluster testing: fork the test binary into real OS processes.
//!
//! The thread-backed cluster tests in `timelite` prove the TCP transport; this
//! module proves *process isolation* — separate address spaces, serialization
//! on every cross-worker path — by re-running the currently executing test
//! binary as the cluster's other processes (the classic env-var re-entry
//! pattern):
//!
//! 1. The parent test process calls [`cluster_run`]. It picks loopback
//!    addresses, spawns one child per additional process — `current_exe()`
//!    re-invoked with `<test_name> --exact --nocapture` and the cluster role
//!    described in `MP_CLUSTER_*` environment variables — and then joins the
//!    cluster itself as process 0.
//! 2. Each child runs the same test function from the top. Its
//!    [`cluster_run`] call recognizes the environment, executes the dataflow
//!    as its assigned process, writes its workers' `Codec`-encoded results to
//!    the file the parent chose, and exits before the test would continue.
//! 3. The parent waits for the children, decodes their result files, and
//!    returns all workers' results in global worker order — so the caller can
//!    compare them byte-for-byte against in-process runs of the same dataflow.
//!
//! Calls are matched between parent and child by a per-test sequence number:
//! a child spawned for the N-th `cluster_run` of a test replays earlier calls
//! as plain in-process runs (same worker topology, no sockets) so that
//! intervening test logic still sees valid results, and services the N-th
//! call as its cluster role. Tests should therefore issue their `cluster_run`
//! calls before any expensive unrelated work.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use timelite::codec::Codec;
use timelite::{Config, Worker};

pub use timelite::communication::free_addresses;

/// The test name the child must re-enter (also guards against env leakage).
const ENV_TEST: &str = "MP_CLUSTER_TEST";
/// The sequence number of the `cluster_run` call the child services.
const ENV_CALL: &str = "MP_CLUSTER_CALL";
/// The child's process index within the cluster.
const ENV_PROCESS: &str = "MP_CLUSTER_PROCESS";
/// Comma-separated listen addresses, one per process.
const ENV_ADDRS: &str = "MP_CLUSTER_ADDRS";
/// Workers per process.
const ENV_WPP: &str = "MP_CLUSTER_WPP";
/// File the child writes its encoded results to.
const ENV_OUT: &str = "MP_CLUSTER_OUT";
/// The child's private data directory (durable-storage runs only).
const ENV_DATA: &str = "MP_CLUSTER_DATA";

/// What [`cluster_run_with_data`] knows about one spawned child process.
///
/// The PIDs let tests that exercise crash recovery assert which process died,
/// and the data directories let them inspect (or re-open) each process's
/// durable stores after the run.
#[derive(Clone, Debug)]
pub struct ChildInfo {
    /// The child's process index within the cluster (1-based; the parent is 0).
    pub process: usize,
    /// The child's operating-system process id.
    pub pid: u32,
    /// The data directory assigned to the child, if the run was given a data
    /// root.
    pub data_dir: Option<PathBuf>,
}

/// The results of a [`cluster_run_with_data`]: every worker's result plus
/// what the parent knows about the children it forked.
pub struct ClusterOutcome<R> {
    /// Every worker's result in global worker order.
    pub results: Vec<R>,
    /// The spawned children (processes `1..n`), in process order.
    pub children: Vec<ChildInfo>,
}

/// The data directory assigned to this cluster process, if any.
///
/// Inside a child forked by [`cluster_run_with_data`] this is the directory
/// the parent assigned it; in the parent (process 0) — or outside any cluster
/// run — it is `None`, and the test should fall back to
/// `data_root.join("process-0")`, which is the directory the parent reserves
/// for itself.
pub fn cluster_data_dir() -> Option<PathBuf> {
    std::env::var(ENV_DATA).ok().map(PathBuf::from)
}

/// The directory [`cluster_run_with_data`] assigns to `process` under
/// `data_root`.
pub fn process_data_dir(data_root: &std::path::Path, process: usize) -> PathBuf {
    data_root.join(format!("process-{process}"))
}

/// Unwind protection between fork and join: if the parent panics while the
/// children are alive — a worker assertion inside the cluster computation, a
/// bootstrap failure, a missing result file — this guard SIGKILLs the
/// recorded children and removes their scratch state (result files and, on
/// unwind only, the per-process data directories) instead of leaking real OS
/// processes. Disarmed once the parent has joined the children normally.
struct ChildReaper {
    children: Arc<Mutex<Vec<(Child, PathBuf)>>>,
    parent_done: Arc<AtomicBool>,
    data_dirs: Vec<PathBuf>,
    armed: bool,
}

impl ChildReaper {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ChildReaper {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Stop the watchdog before killing anyone: a child killed here must
        // not be mistaken for a crashed child (its `process::exit(102)`
        // would swallow the panic currently unwinding).
        self.parent_done.store(true, Ordering::SeqCst);
        let mut children = match self.children.lock() {
            Ok(children) => children,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (child, out) in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_file(out.as_path());
        }
        for dir in &self.data_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// The cluster role a child process was spawned for.
struct ChildRole {
    test: String,
    call: usize,
    process: usize,
    workers_per_process: usize,
    addresses: Vec<String>,
    out: PathBuf,
}

fn child_role() -> Option<ChildRole> {
    let process = std::env::var(ENV_PROCESS).ok()?;
    Some(ChildRole {
        test: std::env::var(ENV_TEST).expect("child env incomplete: test name"),
        call: std::env::var(ENV_CALL)
            .expect("child env incomplete: call")
            .parse()
            .expect("malformed call number"),
        process: process.parse().expect("malformed process index"),
        workers_per_process: std::env::var(ENV_WPP)
            .expect("child env incomplete: workers per process")
            .parse()
            .expect("malformed worker count"),
        addresses: std::env::var(ENV_ADDRS)
            .expect("child env incomplete: addresses")
            .split(',')
            .map(str::to_string)
            .collect(),
        out: PathBuf::from(std::env::var(ENV_OUT).expect("child env incomplete: output path")),
    })
}

/// Per-test `cluster_run` sequence numbers. Children run a single test
/// (`--exact`), so numbering per test name keeps parent and child counters
/// aligned even when the parent binary runs many tests.
fn next_call(test_name: &str) -> usize {
    static CALLS: Mutex<Option<HashMap<String, usize>>> = Mutex::new(None);
    let mut calls = CALLS.lock().expect("call counter poisoned");
    let calls = calls.get_or_insert_with(HashMap::new);
    let call = calls.entry(test_name.to_string()).or_insert(0);
    let current = *call;
    *call += 1;
    current
}

/// Runs `func` as a `processes` × `workers_per_process` cluster of real OS
/// processes and returns every worker's result in global worker order.
///
/// `test_name` must be the exact libtest name of the calling test function
/// (what `cargo test <name> --exact` would run): the forked children re-enter
/// the binary through it. See the module docs for the re-entry protocol.
pub fn cluster_run<R, F>(
    test_name: &str,
    processes: usize,
    workers_per_process: usize,
    func: F,
) -> Vec<R>
where
    F: Fn(&mut Worker) -> R + Send + Sync + 'static,
    R: Codec + Send + 'static,
{
    cluster_run_with_data(test_name, processes, workers_per_process, None, func).results
}

/// [`cluster_run`], plus per-process data directories and child visibility.
///
/// When `data_root` is given, every child process is assigned the private
/// directory `data_root/process-{i}` (created by the parent, readable in the
/// child via [`cluster_data_dir`]); the parent reserves `process-0` for
/// itself. The returned [`ClusterOutcome`] carries each child's PID and data
/// directory alongside the worker results, so crash-recovery tests can target
/// a specific process and re-open its stores.
pub fn cluster_run_with_data<R, F>(
    test_name: &str,
    processes: usize,
    workers_per_process: usize,
    data_root: Option<&std::path::Path>,
    func: F,
) -> ClusterOutcome<R>
where
    F: Fn(&mut Worker) -> R + Send + Sync + 'static,
    R: Codec + Send + 'static,
{
    assert!(processes > 0, "at least one process is required");
    let call = next_call(test_name);

    if let Some(role) = child_role() {
        assert_eq!(
            role.test, test_name,
            "child re-entered the wrong test: spawned for {:?}, reached {:?}",
            role.test, test_name
        );
        if call < role.call {
            // An earlier cluster_run of this test (possibly of a different
            // shape), replayed in-process so the test logic between the calls
            // still sees valid results.
            let results =
                timelite::execute(Config::process(processes * workers_per_process), func);
            return ClusterOutcome { results, children: Vec::new() };
        }
        assert_eq!(
            call, role.call,
            "cluster_run call {} reached before call {} — calls must be deterministic",
            call, role.call
        );
        assert_eq!(
            role.workers_per_process, workers_per_process,
            "child and parent disagree on the cluster shape"
        );
        let config = Config::cluster(role.process, role.workers_per_process, role.addresses);
        let results = timelite::execute(config, func);
        std::fs::write(&role.out, results.encode_to_vec())
            .expect("child failed to write its results");
        // The parent only needs this call; exiting skips the rest of the test.
        std::process::exit(0);
    }

    // Parent: spawn processes 1..n, then join as process 0.
    let addresses = free_addresses(processes);
    let exe = std::env::current_exe().expect("current_exe unavailable");
    if let Some(root) = data_root {
        for process in 0..processes {
            std::fs::create_dir_all(process_data_dir(root, process))
                .expect("failed to create a process data directory");
        }
    }
    let mut infos: Vec<ChildInfo> = Vec::new();
    let children: Vec<(Child, PathBuf)> = (1..processes)
        .map(|process| {
            let out = std::env::temp_dir().join(format!(
                "mp-cluster-{test_name}-{call}-{process}-{}.bin",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&out);
            let data_dir = data_root.map(|root| process_data_dir(root, process));
            let mut command = Command::new(&exe);
            command
                .arg(test_name)
                .arg("--exact")
                .arg("--nocapture")
                .env(ENV_TEST, test_name)
                .env(ENV_CALL, call.to_string())
                .env(ENV_PROCESS, process.to_string())
                .env(ENV_WPP, workers_per_process.to_string())
                .env(ENV_ADDRS, addresses.join(","))
                .env(ENV_OUT, &out)
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            if let Some(dir) = &data_dir {
                command.env(ENV_DATA, dir);
            }
            let child = command.spawn().expect("failed to spawn cluster child process");
            infos.push(ChildInfo { process, pid: child.id(), data_dir });
            (child, out)
        })
        .collect();

    // The parent now blocks inside the cluster computation; a child crashing
    // mid-run would starve it of frames and hang it forever. A watchdog polls
    // child liveness while the parent computes and aborts the whole test
    // process on a failed child, turning a silent hang into a loud failure.
    let children = Arc::new(Mutex::new(children));
    let parent_done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let children = Arc::clone(&children);
        let parent_done = Arc::clone(&parent_done);
        std::thread::spawn(move || {
            while !parent_done.load(Ordering::Relaxed) {
                for (child, _) in children.lock().expect("children poisoned").iter_mut() {
                    if let Ok(Some(status)) = child.try_wait() {
                        if !status.success() {
                            // Re-check: a dead child observed *after* the
                            // parent finished (or after the reaper killed it
                            // during an unwind) is not a crash.
                            if parent_done.load(Ordering::SeqCst) {
                                return;
                            }
                            eprintln!(
                                "cluster child exited with {status} while the parent was \
                                 still computing; aborting instead of hanging"
                            );
                            std::process::exit(102);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };

    // From here until the children are joined, a parent panic would leak
    // live child processes: the reaper kills and cleans them up on unwind.
    let mut reaper = ChildReaper {
        children: Arc::clone(&children),
        parent_done: Arc::clone(&parent_done),
        data_dirs: data_root
            .map(|root| (0..processes).map(|process| process_data_dir(root, process)).collect())
            .unwrap_or_default(),
        armed: true,
    };

    let config = Config::cluster(0, workers_per_process, addresses);
    let mut results = timelite::execute(config, func);
    parent_done.store(true, Ordering::SeqCst);
    watchdog.join().expect("watchdog thread panicked");
    drop(std::mem::replace(&mut reaper.children, Arc::new(Mutex::new(Vec::new()))));
    let children =
        Arc::try_unwrap(children).expect("watchdog joined").into_inner().expect("children poisoned");

    for (mut child, out) in children {
        // try_wait in the watchdog caches a reaped status; wait() returns it.
        let status = child.wait().expect("failed to wait for cluster child");
        assert!(status.success(), "cluster child exited with {status}");
        let bytes = std::fs::read(&out).expect("cluster child left no results");
        let _ = std::fs::remove_file(&out);
        results.extend(Vec::<R>::decode_from_slice(&bytes));
    }
    reaper.disarm();
    ClusterOutcome { results, children: infos }
}
