//! Logarithmically-binned latency histograms, percentiles and CCDFs.
//!
//! The paper records observed latencies "in a histogram of logarithmically-sized
//! bins" (Section 5) and reports selected percentiles (p25/p50/p99/max in the
//! timelines, 90/99/99.99/max in the overhead tables) as well as complementary
//! cumulative distribution functions (Figures 13–15).

/// A histogram of non-negative values (nanoseconds in our usage) with
/// logarithmically-sized bins: each power of two is subdivided into a fixed
/// number of linear sub-bins, bounding the relative quantile error.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    /// Sub-bins per power of two.
    grid: u64,
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

const DEFAULT_GRID: u64 = 16;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram with the default resolution.
    pub fn new() -> Self {
        LatencyHistogram {
            grid: DEFAULT_GRID,
            counts: Vec::new(),
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// The bin index for `value`.
    fn bin_of(&self, value: u64) -> usize {
        if value < self.grid {
            value as usize
        } else {
            let exponent = 63 - value.leading_zeros() as u64;
            let base = self.grid.trailing_zeros() as u64;
            let offset = (value >> (exponent - base)) - self.grid;
            ((exponent - base) * self.grid + self.grid + offset) as usize
        }
    }

    /// The lower bound of bin `index` (the value reported for quantiles in it).
    fn bin_lower(&self, index: usize) -> u64 {
        let index = index as u64;
        if index < self.grid {
            index
        } else {
            let base = self.grid.trailing_zeros() as u64;
            let exponent = (index - self.grid) / self.grid + base;
            let offset = (index - self.grid) % self.grid;
            (self.grid + offset) << (exponent - base)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bin = self.bin_of(value);
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128;
    }

    /// Records `count` identical observations.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let bin = self.bin_of(value);
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += count;
        self.total += count;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128 * count as u128;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.grid, other.grid, "histograms with different resolutions");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (index, count) in other.counts.iter().enumerate() {
            self.counts[index] += count;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The largest recorded value.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// The smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The mean of the recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (lower bound of the containing bin;
    /// the exact maximum for `q == 1`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return self.bin_lower(index);
            }
        }
        self.max
    }

    /// The complementary cumulative distribution function: for each distinct
    /// latency bound, the fraction of observations strictly greater than it.
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut above = self.total;
        for (index, count) in self.counts.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            above -= count;
            points.push((self.bin_lower(index), above as f64 / self.total as f64));
        }
        points
    }

    /// Resets the histogram.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.max = 0;
        self.min = u64::MAX;
        self.sum = 0;
    }
}

/// Formats a nanosecond value as fractional milliseconds (the unit the paper
/// reports).
pub fn nanos_to_millis(nanos: u64) -> f64 {
    nanos as f64 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let histogram = LatencyHistogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.max(), 0);
        assert_eq!(histogram.quantile(0.99), 0);
        assert!(histogram.ccdf().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut histogram = LatencyHistogram::new();
        for value in 0..16u64 {
            histogram.record(value);
        }
        assert_eq!(histogram.count(), 16);
        assert_eq!(histogram.min(), 0);
        assert_eq!(histogram.max(), 15);
        assert_eq!(histogram.quantile(1.0), 15);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut histogram = LatencyHistogram::new();
        for value in 1..=10_000u64 {
            histogram.record(value * 1_000);
        }
        let mut previous = 0;
        for q in [0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let value = histogram.quantile(q);
            assert!(value >= previous, "quantiles must be monotone");
            assert!(value <= histogram.max());
            previous = value;
        }
        // The median of 1..10000 ms-ish values should be around 5000 * 1000 ns,
        // within the relative error of the log-binning (1/16).
        let median = histogram.quantile(0.5) as f64;
        assert!((median - 5_000_000.0).abs() / 5_000_000.0 < 0.1, "median {median} too far off");
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut histogram = LatencyHistogram::new();
        let value = 123_456_789u64;
        histogram.record(value);
        let reported = histogram.quantile(0.5);
        let error = (value as f64 - reported as f64).abs() / value as f64;
        assert!(error < 1.0 / 16.0, "relative error {error} exceeds bin width");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        b.record_n(500, 3);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn ccdf_is_decreasing_and_starts_below_one() {
        let mut histogram = LatencyHistogram::new();
        for value in 0..1000u64 {
            histogram.record(value * 7);
        }
        let ccdf = histogram.ccdf();
        assert!(!ccdf.is_empty());
        let mut previous = 1.0;
        for (_, fraction) in &ccdf {
            assert!(*fraction <= previous);
            previous = *fraction;
        }
        assert_eq!(ccdf.last().expect("non-empty").1, 0.0);
    }

    #[test]
    fn mean_matches_inputs() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(100);
        histogram.record(300);
        assert!((histogram.mean() - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn nanos_conversion() {
        assert!((nanos_to_millis(1_500_000) - 1.5).abs() < 1e-9);
    }
}
