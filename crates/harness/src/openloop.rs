//! Open-loop load generation.
//!
//! The paper's test harness "supplies the input at a specified rate, even if
//! the system itself becomes less responsive (e.g., during a migration)"
//! (Section 5). The latency of a record is therefore measured against the time
//! at which the record *should* have entered the system, not the time the
//! (possibly backlogged) driver actually managed to push it.

use std::time::Instant;

/// A wall-clock measuring nanoseconds since the start of an experiment.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    start: Instant,
}

impl Clock {
    /// Starts the clock.
    pub fn start() -> Self {
        Clock { start: Instant::now() }
    }

    /// Nanoseconds elapsed since the clock started.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// An open-loop schedule: `rate` records per second, evenly spaced, starting at
/// time zero.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopSchedule {
    /// Offered load in records per second.
    pub rate_per_sec: u64,
}

impl OpenLoopSchedule {
    /// Creates a schedule with the given offered load.
    pub fn new(rate_per_sec: u64) -> Self {
        assert!(rate_per_sec > 0, "offered load must be positive");
        OpenLoopSchedule { rate_per_sec }
    }

    /// The total number of records due by `elapsed_nanos`.
    pub fn due_by(&self, elapsed_nanos: u64) -> u64 {
        ((elapsed_nanos as u128 * self.rate_per_sec as u128) / 1_000_000_000) as u64
    }

    /// The scheduled arrival time (nanoseconds) of record `index`.
    pub fn scheduled_nanos(&self, index: u64) -> u64 {
        ((index as u128 * 1_000_000_000) / self.rate_per_sec as u128) as u64
    }

    /// The latency of a record scheduled at `scheduled_nanos` that completed at
    /// `completed_nanos` (saturating at zero if completion is measured early).
    pub fn latency(&self, scheduled_nanos: u64, completed_nanos: u64) -> u64 {
        completed_nanos.saturating_sub(scheduled_nanos)
    }
}

/// Tracks how far an experiment has progressed through an open-loop schedule,
/// batching records into fixed-length epochs (the logical timestamps of the
/// dataflow).
#[derive(Clone, Copy, Debug)]
pub struct EpochDriver {
    schedule: OpenLoopSchedule,
    /// Length of one logical epoch in nanoseconds.
    pub epoch_nanos: u64,
    /// The next epoch to be emitted.
    pub next_epoch: u64,
}

impl EpochDriver {
    /// Creates a driver emitting `rate_per_sec` records grouped into epochs of
    /// `epoch_nanos` nanoseconds.
    pub fn new(rate_per_sec: u64, epoch_nanos: u64) -> Self {
        assert!(epoch_nanos > 0, "epoch length must be positive");
        EpochDriver { schedule: OpenLoopSchedule::new(rate_per_sec), epoch_nanos, next_epoch: 0 }
    }

    /// The schedule underlying this driver.
    pub fn schedule(&self) -> OpenLoopSchedule {
        self.schedule
    }

    /// The number of records each worker of `peers` should emit for `epoch`
    /// (the global per-epoch quota divided evenly, remainder to low workers).
    pub fn records_for(&self, epoch: u64, worker: usize, peers: usize) -> u64 {
        let start = self.schedule.due_by(epoch * self.epoch_nanos);
        let end = self.schedule.due_by((epoch + 1) * self.epoch_nanos);
        let total = end - start;
        let base = total / peers as u64;
        let remainder = total % peers as u64;
        base + u64::from((worker as u64) < remainder)
    }

    /// The epochs (if any) that are due to be emitted by `elapsed_nanos`,
    /// advancing the driver past them.
    pub fn due_epochs(&mut self, elapsed_nanos: u64) -> std::ops::Range<u64> {
        let target = elapsed_nanos / self.epoch_nanos;
        let range = self.next_epoch..target.max(self.next_epoch);
        self.next_epoch = range.end;
        range
    }

    /// The scheduled start time of `epoch` in nanoseconds.
    pub fn epoch_start_nanos(&self, epoch: u64) -> u64 {
        epoch * self.epoch_nanos
    }

    /// The latency of the records of `epoch` if the epoch completed (its
    /// frontier passed) at `completed_nanos`: measured from the epoch's *end*,
    /// the moment its last record was scheduled to arrive.
    pub fn epoch_latency(&self, epoch: u64, completed_nanos: u64) -> u64 {
        completed_nanos.saturating_sub((epoch + 1) * self.epoch_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_spaces_records_evenly() {
        let schedule = OpenLoopSchedule::new(1_000_000);
        assert_eq!(schedule.due_by(0), 0);
        assert_eq!(schedule.due_by(1_000_000_000), 1_000_000);
        assert_eq!(schedule.due_by(500_000_000), 500_000);
        assert_eq!(schedule.scheduled_nanos(1_000_000), 1_000_000_000);
    }

    #[test]
    fn latency_saturates_at_zero() {
        let schedule = OpenLoopSchedule::new(1_000);
        assert_eq!(schedule.latency(100, 50), 0);
        assert_eq!(schedule.latency(100, 250), 150);
    }

    #[test]
    fn epoch_driver_divides_records_across_workers() {
        let driver = EpochDriver::new(1_000_000, 1_000_000); // 1000 records per 1 ms epoch
        let total: u64 = (0..4).map(|worker| driver.records_for(7, worker, 4)).sum();
        assert_eq!(total, 1_000);
        // Shares differ by at most one.
        let shares: Vec<u64> = (0..4).map(|worker| driver.records_for(7, worker, 4)).collect();
        assert!(shares.iter().max().unwrap() - shares.iter().min().unwrap() <= 1);
    }

    #[test]
    fn due_epochs_advance_monotonically() {
        let mut driver = EpochDriver::new(1_000, 1_000_000);
        assert_eq!(driver.due_epochs(2_500_000), 0..2);
        assert_eq!(driver.due_epochs(2_500_000), 2..2);
        assert_eq!(driver.due_epochs(5_000_000), 2..5);
    }

    #[test]
    fn epoch_latency_measured_from_epoch_end() {
        let driver = EpochDriver::new(1_000, 1_000_000);
        assert_eq!(driver.epoch_latency(3, 4_000_000), 0);
        assert_eq!(driver.epoch_latency(3, 6_500_000), 2_500_000);
    }

    #[test]
    fn clock_elapses() {
        let clock = Clock::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(clock.elapsed_nanos() >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = OpenLoopSchedule::new(0);
    }
}
