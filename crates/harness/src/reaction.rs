//! Reaction timelines: the milestone record of a closed-loop rebalancing
//! experiment, from the moment a workload shifts to the moment service
//! latency recovers.
//!
//! DS2-style controllers are judged by their reaction timeline — how long
//! after a workload change the controller detects it, how long the corrective
//! migration takes, and when the system's latency returns to its baseline.
//! [`ReactionTimeline`] collects those milestones alongside the ordinary
//! 250 ms latency timeline, derives the recovery point from the latency
//! series itself, and renders everything as rows/CSV for the experiment
//! drivers.

use crate::timeline::TimelinePoint;

/// A milestone of a closed-loop rebalancing run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReactionEvent {
    /// The workload's key skew switched on.
    SkewOnset,
    /// The hot key set rotated mid-run.
    HotKeyRotation,
    /// The controller observed an imbalance above its threshold and adopted a
    /// migration plan.
    Detection,
    /// The first migration step was submitted on the control stream.
    MigrationStart,
    /// The last migration step completed (observed through the probe).
    MigrationEnd,
    /// Service latency returned to its pre-shift baseline.
    Recovered,
}

impl ReactionEvent {
    /// The milestone's name as used in reports and CSV.
    pub fn name(&self) -> &'static str {
        match self {
            ReactionEvent::SkewOnset => "skew-onset",
            ReactionEvent::HotKeyRotation => "hot-key-rotation",
            ReactionEvent::Detection => "detection",
            ReactionEvent::MigrationStart => "migration-start",
            ReactionEvent::MigrationEnd => "migration-end",
            ReactionEvent::Recovered => "recovered",
        }
    }
}

/// The milestone record of one closed-loop run: `(at_nanos, event)` pairs in
/// the order they were observed.
#[derive(Clone, Debug, Default)]
pub struct ReactionTimeline {
    events: Vec<(u64, ReactionEvent)>,
}

impl ReactionTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `event` at `at_nanos` since the start of the experiment.
    pub fn record(&mut self, at_nanos: u64, event: ReactionEvent) {
        self.events.push((at_nanos, event));
    }

    /// The recorded milestones, in recording order.
    pub fn events(&self) -> &[(u64, ReactionEvent)] {
        &self.events
    }

    /// The first occurrence of `event`, if any.
    pub fn first(&self, event: ReactionEvent) -> Option<u64> {
        self.events.iter().find(|(_, e)| *e == event).map(|(at, _)| *at)
    }

    /// The last occurrence of `event`, if any.
    pub fn last(&self, event: ReactionEvent) -> Option<u64> {
        self.events.iter().rev().find(|(_, e)| *e == event).map(|(at, _)| *at)
    }

    /// Derives the recovery milestone from a latency timeline: the start of
    /// the first reporting interval at or after `after_nanos` whose p99 falls
    /// back to `multiplier` times the baseline p99 (the median p99 of the
    /// intervals before `baseline_until_nanos`, plus `slack_nanos` to absorb
    /// near-zero baselines). Records and returns it, or `None` if latency
    /// never recovers within the series.
    pub fn mark_recovery(
        &mut self,
        points: &[TimelinePoint],
        baseline_until_nanos: u64,
        after_nanos: u64,
        multiplier: f64,
        slack_nanos: u64,
    ) -> Option<u64> {
        let mut baseline: Vec<u64> = points
            .iter()
            .filter(|point| point.at_nanos < baseline_until_nanos)
            .map(|point| point.p99)
            .collect();
        if baseline.is_empty() {
            return None;
        }
        baseline.sort_unstable();
        let median = baseline[baseline.len() / 2];
        let bound = (median as f64 * multiplier) as u64 + slack_nanos;
        let recovered = points
            .iter()
            .find(|point| point.at_nanos >= after_nanos && point.p99 <= bound)
            .map(|point| point.at_nanos)?;
        self.record(recovered, ReactionEvent::Recovered);
        Some(recovered)
    }

    /// The phase label active at `at_nanos`: the name of the latest milestone
    /// at or before it, or `"baseline"` before the first milestone. Used to
    /// annotate latency timeline rows.
    pub fn phase_at(&self, at_nanos: u64) -> &'static str {
        self.events
            .iter()
            .filter(|(at, _)| *at <= at_nanos)
            .max_by_key(|(at, _)| *at)
            .map(|(_, event)| event.name())
            .unwrap_or("baseline")
    }

    /// Renders the milestones as `event time_s` rows.
    pub fn rows(&self) -> String {
        let mut output = String::new();
        output.push_str(&format!("{:<18} {:>10}\n", "milestone", "time[s]"));
        for (at, event) in &self.events {
            output.push_str(&format!("{:<18} {:>10.3}\n", event.name(), *at as f64 / 1e9));
        }
        output
    }

    /// Renders a latency timeline annotated with reaction phases as CSV rows
    /// (`time_s,max_ms,p99_ms,p50_ms,p25_ms,phase`) for
    /// [`write_csv`](crate::report::write_csv).
    pub fn csv_rows(&self, points: &[TimelinePoint]) -> Vec<Vec<String>> {
        use crate::histogram::nanos_to_millis;
        points
            .iter()
            .map(|point| {
                vec![
                    format!("{:.3}", point.at_nanos as f64 / 1e9),
                    format!("{:.3}", nanos_to_millis(point.max)),
                    format!("{:.3}", nanos_to_millis(point.p99)),
                    format!("{:.3}", nanos_to_millis(point.p50)),
                    format!("{:.3}", nanos_to_millis(point.p25)),
                    self.phase_at(point.at_nanos).to_string(),
                ]
            })
            .collect()
    }

    /// The CSV header matching [`csv_rows`](Self::csv_rows).
    pub const CSV_HEADER: [&'static str; 6] =
        ["time_s", "max_ms", "p99_ms", "p50_ms", "p25_ms", "phase"];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(at_nanos: u64, p99: u64) -> TimelinePoint {
        TimelinePoint { at_nanos, max: p99 * 2, p99, p50: p99 / 2, p25: p99 / 4, samples: 10 }
    }

    #[test]
    fn milestones_are_recorded_in_order() {
        let mut timeline = ReactionTimeline::new();
        timeline.record(1_000, ReactionEvent::SkewOnset);
        timeline.record(2_000, ReactionEvent::Detection);
        timeline.record(2_500, ReactionEvent::MigrationStart);
        timeline.record(4_000, ReactionEvent::MigrationEnd);
        assert_eq!(timeline.first(ReactionEvent::Detection), Some(2_000));
        assert_eq!(timeline.last(ReactionEvent::MigrationEnd), Some(4_000));
        assert_eq!(timeline.first(ReactionEvent::Recovered), None);
        assert_eq!(timeline.events().len(), 4);
    }

    #[test]
    fn phases_partition_the_run() {
        let mut timeline = ReactionTimeline::new();
        timeline.record(1_000, ReactionEvent::SkewOnset);
        timeline.record(3_000, ReactionEvent::MigrationStart);
        assert_eq!(timeline.phase_at(0), "baseline");
        assert_eq!(timeline.phase_at(1_000), "skew-onset");
        assert_eq!(timeline.phase_at(2_999), "skew-onset");
        assert_eq!(timeline.phase_at(10_000), "migration-start");
    }

    #[test]
    fn recovery_is_derived_from_the_latency_series() {
        // Baseline p99 ~1ms; latency spikes after the shift at 2s and falls
        // back under 2x baseline at 4s.
        let points = vec![
            point(0, 1_000_000),
            point(250_000_000, 1_100_000),
            point(500_000_000, 900_000),
            point(2_000_000_000, 50_000_000),
            point(3_000_000_000, 30_000_000),
            point(4_000_000_000, 1_500_000),
        ];
        let mut timeline = ReactionTimeline::new();
        timeline.record(2_000_000_000, ReactionEvent::SkewOnset);
        timeline.record(3_500_000_000, ReactionEvent::MigrationEnd);
        let recovered = timeline.mark_recovery(
            &points,
            2_000_000_000, // baseline: everything before the shift
            3_500_000_000, // search after the migration completed
            2.0,
            0,
        );
        assert_eq!(recovered, Some(4_000_000_000));
        assert_eq!(timeline.first(ReactionEvent::Recovered), Some(4_000_000_000));
    }

    #[test]
    fn recovery_requires_a_baseline_and_an_actual_recovery() {
        let spiky = vec![point(1_000_000_000, 80_000_000), point(2_000_000_000, 90_000_000)];
        let mut timeline = ReactionTimeline::new();
        assert_eq!(timeline.mark_recovery(&spiky, 0, 0, 2.0, 0), None, "no baseline points");
        let baseline_only = vec![point(0, 1_000_000), point(1_000_000_000, 70_000_000)];
        assert_eq!(
            timeline.mark_recovery(&baseline_only, 500_000_000, 1_000_000_000, 2.0, 0),
            None,
            "latency never recovered"
        );
        assert!(timeline.events().is_empty());
    }

    #[test]
    fn csv_rows_carry_phases() {
        let mut timeline = ReactionTimeline::new();
        timeline.record(250_000_000, ReactionEvent::SkewOnset);
        let rows = timeline.csv_rows(&[point(0, 1_000_000), point(250_000_000, 2_000_000)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][5], "baseline");
        assert_eq!(rows[1][5], "skew-onset");
        assert_eq!(rows[1][2], "2.000");
        assert_eq!(ReactionTimeline::CSV_HEADER.len(), rows[0].len());
    }
}
