//! Crash testing: SIGKILL the test binary at a named barrier, then restart it.
//!
//! [`fault_run`] proves recovery claims with a real process death, using the
//! same env-var re-entry pattern as [`cluster_run`](crate::cluster_run):
//!
//! 1. The parent test process calls [`fault_run`]. It creates a fresh data
//!    directory and spawns the test binary (`<test_name> --exact`) as an
//!    **armed** child (attempt 0) pointed at that directory.
//! 2. The child re-enters the test function, recognizes the `MP_FAULT_*`
//!    environment, and runs the caller's closure with a [`FaultCtx`]. When the
//!    closure reaches [`FaultCtx::barrier`], the armed child drops a marker
//!    file and parks.
//! 3. The parent polls for the marker and SIGKILLs the parked child — no
//!    drop handlers, no flushes: whatever the closure made durable before the
//!    barrier is all that survives.
//! 4. The parent spawns an **unarmed** child (attempt 1) on the same data
//!    directory. Its barriers are no-ops; it recovers whatever the victim
//!    left on disk, runs to completion, and writes its `Codec`-encoded result
//!    to a file the parent decodes.
//!
//! The closure sees which world it is in through [`FaultCtx::attempt`] (0 =
//! doomed first run, 1 = recovery run) and owns the policy of what to skip on
//! recovery (e.g. a phase marked complete by an on-disk flag). For an oracle
//! run without any fault — same closure, fresh directory, no kill — construct
//! the context directly with [`FaultCtx::local`].
//!
//! A test may call `fault_run` once; the re-entered child services the first
//! call it reaches.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use timelite::codec::Codec;

/// The test name the child must re-enter (also guards against env leakage).
const ENV_TEST: &str = "MP_FAULT_TEST";
/// Which attempt this child is: 0 = armed victim, 1 = recovery run.
const ENV_ATTEMPT: &str = "MP_FAULT_ATTEMPT";
/// The data directory shared by both attempts.
const ENV_DIR: &str = "MP_FAULT_DIR";
/// "1" iff barriers park the process for the parent to kill.
const ENV_ARMED: &str = "MP_FAULT_ARMED";
/// File the recovery child writes its encoded result to.
const ENV_OUT: &str = "MP_FAULT_OUT";

/// How long the parent waits for the armed child to reach a barrier.
const BARRIER_WAIT: Duration = Duration::from_secs(120);
/// How long an armed barrier parks before concluding the parent forgot it.
const PARK_LIMIT: Duration = Duration::from_secs(300);

/// The world a [`fault_run`] closure executes in.
#[derive(Clone, Debug)]
pub struct FaultCtx {
    /// The data directory shared by the killed run and the recovery run.
    pub data_dir: PathBuf,
    /// 0 on the armed first run (killed at its barrier), 1 on the recovery
    /// run. Closures use this — or durable on-disk markers — to decide what
    /// work is already done.
    pub attempt: usize,
    /// Whether [`FaultCtx::barrier`] parks for the kill (armed victim) or is
    /// a no-op (recovery and oracle runs).
    pub armed: bool,
}

impl FaultCtx {
    /// An in-process context for an oracle run: `data_dir` as given, attempt
    /// 0, unarmed — every barrier is a no-op and the closure runs end to end.
    pub fn local(data_dir: impl Into<PathBuf>) -> Self {
        FaultCtx { data_dir: data_dir.into(), attempt: 0, armed: false }
    }

    /// Declares the kill point `name`. Unarmed: returns immediately. Armed:
    /// writes the marker file `.barriers/{name}` under the data directory and
    /// parks until the parent delivers SIGKILL.
    ///
    /// Everything the closure needs to survive the crash must be durable
    /// (synced, not merely written) *before* this call.
    pub fn barrier(&self, name: &str) {
        if !self.armed {
            return;
        }
        let dir = self.data_dir.join(".barriers");
        std::fs::create_dir_all(&dir).expect("failed to create the barrier directory");
        std::fs::write(dir.join(name), b"reached").expect("failed to write the barrier marker");
        std::thread::sleep(PARK_LIMIT);
        panic!("armed barrier {name:?} parked {PARK_LIMIT:?} without being killed");
    }
}

/// Unwind protection for the parent: if an assertion fires between a fork and
/// the corresponding join — the victim exits before reaching a barrier, the
/// barrier wait times out, the recovery child fails — this guard SIGKILLs
/// whichever child is currently alive and removes the scratch data directory
/// instead of leaking them. Disarmed on the success path, which deliberately
/// leaves the data directory on disk for inspection (see
/// [`FaultOutcome::data_dir`]).
struct FaultReaper {
    child: Option<Child>,
    data_dir: PathBuf,
    armed: bool,
}

impl FaultReaper {
    /// Registers `child` as the one to kill on unwind and hands it back for
    /// use; any previously watched child is forgotten (callers reap it first).
    fn watch(&mut self, child: Child) -> &mut Child {
        self.child = Some(child);
        self.child.as_mut().expect("just set")
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for FaultReaper {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}

/// What a completed [`fault_run`] proved.
pub struct FaultOutcome<R> {
    /// The recovery run's result.
    pub result: R,
    /// The PID of the armed child that was SIGKILLed at its barrier.
    pub killed_pid: u32,
    /// The data directory both attempts shared (left on disk for inspection).
    pub data_dir: PathBuf,
}

/// Runs `func` in a child process, SIGKILLs it at its [`FaultCtx::barrier`],
/// restarts it on the same data directory, and returns the recovery run's
/// result.
///
/// `test_name` must be the exact libtest name of the calling test function
/// (what `cargo test <name> --exact` would run): the forked children re-enter
/// the binary through it. `func` must call [`FaultCtx::barrier`] at least
/// once on its armed path, or the parent fails the test after a timeout.
pub fn fault_run<R, F>(test_name: &str, func: F) -> FaultOutcome<R>
where
    F: Fn(&FaultCtx) -> R,
    R: Codec,
{
    if let Ok(test) = std::env::var(ENV_TEST) {
        // Child: run the closure in the role the environment describes.
        assert_eq!(
            test, test_name,
            "fault child re-entered the wrong test: spawned for {test:?}, reached {test_name:?}"
        );
        let ctx = FaultCtx {
            data_dir: PathBuf::from(std::env::var(ENV_DIR).expect("child env incomplete: dir")),
            attempt: std::env::var(ENV_ATTEMPT)
                .expect("child env incomplete: attempt")
                .parse()
                .expect("malformed attempt number"),
            armed: std::env::var(ENV_ARMED).expect("child env incomplete: armed") == "1",
        };
        let result = func(&ctx);
        let out = std::env::var(ENV_OUT).expect("child env incomplete: output path");
        std::fs::write(out, result.encode_to_vec()).expect("child failed to write its result");
        // The parent only needs this call; exiting skips the rest of the test.
        std::process::exit(0);
    }

    // Parent: fresh data directory, then victim and recovery children.
    let data_dir =
        std::env::temp_dir().join(format!("mp-fault-{test_name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("failed to create the fault data directory");
    let out = data_dir.join("result.bin");
    let exe = std::env::current_exe().expect("current_exe unavailable");
    let spawn = |attempt: usize, armed: bool| {
        Command::new(&exe)
            .arg(test_name)
            .arg("--exact")
            .arg("--nocapture")
            .env(ENV_TEST, test_name)
            .env(ENV_ATTEMPT, attempt.to_string())
            .env(ENV_DIR, &data_dir)
            .env(ENV_ARMED, if armed { "1" } else { "0" })
            .env(ENV_OUT, &out)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("failed to spawn fault child process")
    };

    // A parent panic anywhere below would leak a live child and the scratch
    // directory; the reaper cleans both up on unwind.
    let mut reaper = FaultReaper { child: None, data_dir: data_dir.clone(), armed: true };

    // Attempt 0, armed: wait for it to park at a barrier, then SIGKILL it.
    let killed_pid = {
        let victim = reaper.watch(spawn(0, true));
        let killed_pid = victim.id();
        let barriers = data_dir.join(".barriers");
        let deadline = Instant::now() + BARRIER_WAIT;
        loop {
            let reached =
                std::fs::read_dir(&barriers).map(|dir| dir.count() > 0).unwrap_or(false);
            if reached {
                break;
            }
            if let Ok(Some(status)) = victim.try_wait() {
                panic!("armed fault child exited with {status} before reaching a barrier");
            }
            assert!(
                Instant::now() < deadline,
                "armed fault child never reached a barrier within {BARRIER_WAIT:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        victim.kill().expect("failed to kill the parked fault child");
        victim.wait().expect("failed to reap the killed fault child");
        killed_pid
    };

    // Attempt 1, unarmed: recover from the victim's leavings and finish.
    let status = {
        let survivor = reaper.watch(spawn(1, false));
        survivor.wait().expect("failed to wait for the recovery child")
    };
    assert!(status.success(), "recovery child exited with {status}");
    let bytes = std::fs::read(&out).expect("recovery child left no result");
    reaper.disarm();
    FaultOutcome { result: R::decode_from_slice(&bytes), killed_pid, data_dir }
}
