//! `mp-harness` — the measurement harness of the Megaphone reproduction.
//!
//! This crate contains everything the experiment drivers need to reproduce the
//! paper's measurement methodology (Section 5):
//!
//! * [`openloop`]: open-loop load generation at a fixed offered rate, with
//!   latency measured against each record's *scheduled* arrival time, so that a
//!   slow or migrating system accumulates latency rather than slowing the load.
//! * [`histogram`]: logarithmically-binned latency histograms, percentiles and
//!   CCDFs (Figures 13–15).
//! * [`timeline`]: 250 ms-bucketed latency timelines reporting max/p99/p50/p25
//!   (Figures 1 and 5–12).
//! * [`memory`]: RSS and tracked-state sampling over time (Figure 20).
//! * [`reaction`]: milestone timelines of closed-loop rebalancing runs
//!   (skew onset → detection → migration → latency recovery).
//! * [`report`]: text and CSV rendering of the tables and series.
//! * [`cluster`]: multi-process cluster testing — forks the running test
//!   binary into real OS processes (env-var re-entry) so the same dataflow can
//!   be proven equivalent across thread, process and TCP cluster modes.
//! * [`fault`]: crash testing — SIGKILLs a forked run of the test binary at a
//!   named barrier and restarts it on the same data directory, so durability
//!   claims are proven against a real process death.

#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod histogram;
pub mod memory;
pub mod openloop;
pub mod reaction;
pub mod report;
pub mod timeline;

pub use cluster::{
    cluster_data_dir, cluster_run, cluster_run_with_data, free_addresses, process_data_dir,
    ChildInfo, ClusterOutcome,
};
pub use fault::{fault_run, FaultCtx, FaultOutcome};
pub use histogram::{nanos_to_millis, LatencyHistogram};
pub use memory::{current_rss_bytes, format_bytes, MemorySample, MemorySeries};
pub use openloop::{Clock, EpochDriver, OpenLoopSchedule};
pub use reaction::{ReactionEvent, ReactionTimeline};
pub use report::{ccdf_rows, migration_rows, percentile_table, timeline_rows, write_csv, MigrationSummary};
pub use timeline::{LatencyTimeline, TimelinePoint};
