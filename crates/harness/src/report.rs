//! Text rendering of experiment results: the percentile tables, CCDF dumps,
//! timeline series and latency-vs-duration rows the paper reports, plus a
//! minimal CSV writer for machine-readable output.

use std::io::Write;
use std::path::Path;

use crate::histogram::{nanos_to_millis, LatencyHistogram};
use crate::timeline::TimelinePoint;

/// Renders the percentile table of the overhead experiments (Figures 13–15):
/// `90% / 99% / 99.99% / max` in milliseconds for each labelled configuration.
pub fn percentile_table(rows: &[(String, LatencyHistogram)]) -> String {
    let mut output = String::new();
    output.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "Experiment", "90%", "99%", "99.99%", "max"
    ));
    for (label, histogram) in rows {
        output.push_str(&format!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
            label,
            nanos_to_millis(histogram.quantile(0.90)),
            nanos_to_millis(histogram.quantile(0.99)),
            nanos_to_millis(histogram.quantile(0.9999)),
            nanos_to_millis(histogram.max()),
        ));
    }
    output
}

/// Renders a CCDF as `latency_ms fraction` rows (Figures 13–15, left panels).
pub fn ccdf_rows(histogram: &LatencyHistogram) -> String {
    let mut output = String::new();
    for (latency, fraction) in histogram.ccdf() {
        if fraction > 0.0 {
            output.push_str(&format!("{:12.4} {:.6}\n", nanos_to_millis(latency), fraction));
        }
    }
    output
}

/// Renders a latency timeline as the rows used by the timeline figures
/// (Figures 1 and 5–12): `time_s max p99 p50 p25` in milliseconds.
pub fn timeline_rows(points: &[TimelinePoint]) -> String {
    let mut output = String::new();
    output.push_str(&format!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}\n",
        "time[s]", "max[ms]", "p99[ms]", "p50[ms]", "p25[ms]"
    ));
    for point in points {
        output.push_str(&point.row());
        output.push('\n');
    }
    output
}

/// One point of the migration micro-benchmarks (Figures 16–18): a strategy and
/// configuration label, the migration duration, and the maximum latency during
/// the migration.
#[derive(Clone, Debug)]
pub struct MigrationSummary {
    /// Strategy name ("all-at-once", "fluid", "batched", "optimized").
    pub strategy: String,
    /// Configuration label (e.g. bin or domain count).
    pub label: String,
    /// Migration duration in nanoseconds.
    pub duration_nanos: u64,
    /// Maximum latency observed during the migration, in nanoseconds.
    pub max_latency_nanos: u64,
}

/// Renders migration summaries as `strategy label duration_s max_latency_s` rows.
pub fn migration_rows(rows: &[MigrationSummary]) -> String {
    let mut output = String::new();
    output.push_str(&format!(
        "{:<12} {:>12} {:>14} {:>16}\n",
        "strategy", "config", "duration[s]", "max latency[s]"
    ));
    for row in rows {
        output.push_str(&format!(
            "{:<12} {:>12} {:>14.3} {:>16.3}\n",
            row.strategy,
            row.label,
            row.duration_nanos as f64 / 1e9,
            row.max_latency_nanos as f64 / 1e9,
        ));
    }
    output
}

/// Writes rows of comma-separated values to `path`, creating parent directories.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_with(values: &[u64]) -> LatencyHistogram {
        let mut histogram = LatencyHistogram::new();
        for value in values {
            histogram.record(*value);
        }
        histogram
    }

    #[test]
    fn percentile_table_lists_all_rows() {
        let rows = vec![
            ("4".to_string(), histogram_with(&[1_000_000, 2_000_000])),
            ("Native".to_string(), histogram_with(&[500_000])),
        ];
        let table = percentile_table(&rows);
        assert!(table.contains("Native"));
        assert!(table.lines().count() == 3);
    }

    #[test]
    fn ccdf_rows_are_nonempty_for_data() {
        let histogram = histogram_with(&[1_000_000, 2_000_000, 4_000_000]);
        let rows = ccdf_rows(&histogram);
        assert!(rows.lines().count() >= 2);
    }

    #[test]
    fn migration_rows_render_seconds() {
        let rows = vec![MigrationSummary {
            strategy: "fluid".to_string(),
            label: "4096".to_string(),
            duration_nanos: 2_500_000_000,
            max_latency_nanos: 100_000_000,
        }];
        let rendered = migration_rows(&rows);
        assert!(rendered.contains("fluid"));
        assert!(rendered.contains("2.500"));
        assert!(rendered.contains("0.100"));
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join("megaphone-harness-test");
        let path = dir.join("out.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".to_string(), "2".to_string()]])
            .expect("csv write failed");
        let contents = std::fs::read_to_string(&path).expect("csv read failed");
        assert_eq!(contents, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
