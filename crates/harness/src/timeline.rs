//! Latency timelines: per-interval latency summaries over the runtime of an
//! experiment, matching the paper's timeline figures (observed latency every
//! 250 ms, plotted as max / p0.99 / p0.5 / p0.25).

use crate::histogram::{nanos_to_millis, LatencyHistogram};

/// One reported point of a latency timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelinePoint {
    /// Start of the reporting interval, in nanoseconds since the experiment began.
    pub at_nanos: u64,
    /// Maximum latency in the interval (nanoseconds).
    pub max: u64,
    /// 99th percentile latency (nanoseconds).
    pub p99: u64,
    /// Median latency (nanoseconds).
    pub p50: u64,
    /// 25th percentile latency (nanoseconds).
    pub p25: u64,
    /// Number of observations in the interval.
    pub samples: u64,
}

impl TimelinePoint {
    /// Renders the point as the row format used by the experiment drivers:
    /// `time_s max_ms p99_ms p50_ms p25_ms`.
    pub fn row(&self) -> String {
        format!(
            "{:10.3} {:12.3} {:12.3} {:12.3} {:12.3}",
            self.at_nanos as f64 / 1e9,
            nanos_to_millis(self.max),
            nanos_to_millis(self.p99),
            nanos_to_millis(self.p50),
            nanos_to_millis(self.p25),
        )
    }
}

/// Accumulates latency observations into fixed-width reporting intervals.
#[derive(Clone, Debug)]
pub struct LatencyTimeline {
    interval_nanos: u64,
    current_start: u64,
    current: LatencyHistogram,
    /// Overall histogram across the whole run.
    overall: LatencyHistogram,
    points: Vec<TimelinePoint>,
}

impl LatencyTimeline {
    /// Creates a timeline with the paper's default 250 ms reporting interval.
    pub fn new() -> Self {
        Self::with_interval(250_000_000)
    }

    /// Creates a timeline with a custom reporting interval (nanoseconds).
    pub fn with_interval(interval_nanos: u64) -> Self {
        assert!(interval_nanos > 0, "reporting interval must be positive");
        LatencyTimeline {
            interval_nanos,
            current_start: 0,
            current: LatencyHistogram::new(),
            overall: LatencyHistogram::new(),
            points: Vec::new(),
        }
    }

    /// Records an observation: `latency_nanos` observed at `elapsed_nanos` since
    /// the start of the experiment. Observations must arrive in non-decreasing
    /// `elapsed_nanos` order.
    pub fn record(&mut self, elapsed_nanos: u64, latency_nanos: u64) {
        self.roll_to(elapsed_nanos);
        self.current.record(latency_nanos);
        self.overall.record(latency_nanos);
    }

    /// Closes reporting intervals up to (but not including) the one containing
    /// `elapsed_nanos`.
    pub fn roll_to(&mut self, elapsed_nanos: u64) {
        while elapsed_nanos >= self.current_start + self.interval_nanos {
            self.flush_interval();
        }
    }

    fn flush_interval(&mut self) {
        if !self.current.is_empty() {
            self.points.push(TimelinePoint {
                at_nanos: self.current_start,
                max: self.current.max(),
                p99: self.current.quantile(0.99),
                p50: self.current.quantile(0.5),
                p25: self.current.quantile(0.25),
                samples: self.current.count(),
            });
        }
        self.current.clear();
        self.current_start += self.interval_nanos;
    }

    /// Finishes the timeline, flushing the current interval, and returns the points.
    pub fn finish(mut self) -> (Vec<TimelinePoint>, LatencyHistogram) {
        self.flush_interval();
        (self.points, self.overall)
    }

    /// The points reported so far (not including the open interval).
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// The histogram over every observation recorded so far.
    pub fn overall(&self) -> &LatencyHistogram {
        &self.overall
    }

    /// Maximum latency observed in intervals overlapping `[from_nanos, to_nanos)`.
    pub fn max_in_window(&self, from_nanos: u64, to_nanos: u64) -> u64 {
        self.points
            .iter()
            .filter(|point| {
                point.at_nanos + self.interval_nanos > from_nanos && point.at_nanos < to_nanos
            })
            .map(|point| point.max)
            .max()
            .unwrap_or(0)
    }
}

impl Default for LatencyTimeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_fall_into_intervals() {
        let mut timeline = LatencyTimeline::with_interval(1_000);
        timeline.record(100, 10);
        timeline.record(900, 30);
        timeline.record(1_100, 500);
        let (points, overall) = timeline.finish();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].at_nanos, 0);
        assert_eq!(points[0].max, 30);
        assert_eq!(points[0].samples, 2);
        assert_eq!(points[1].at_nanos, 1_000);
        assert_eq!(points[1].max, 500);
        assert_eq!(overall.count(), 3);
    }

    #[test]
    fn empty_intervals_are_skipped() {
        let mut timeline = LatencyTimeline::with_interval(1_000);
        timeline.record(100, 10);
        timeline.record(5_500, 20);
        let (points, _) = timeline.finish();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].at_nanos, 5_000);
    }

    #[test]
    fn window_max_considers_overlapping_intervals() {
        let mut timeline = LatencyTimeline::with_interval(1_000);
        timeline.record(500, 10);
        timeline.record(1_500, 99);
        timeline.record(2_500, 5);
        timeline.roll_to(10_000);
        assert_eq!(timeline.max_in_window(1_000, 2_000), 99);
        assert_eq!(timeline.max_in_window(0, 10_000), 99);
        assert_eq!(timeline.max_in_window(2_000, 3_000), 5);
    }

    #[test]
    fn rows_render_in_milliseconds() {
        let point = TimelinePoint {
            at_nanos: 1_500_000_000,
            max: 2_000_000,
            p99: 1_000_000,
            p50: 500_000,
            p25: 250_000,
            samples: 10,
        };
        let row = point.row();
        assert!(row.contains("1.500"));
        assert!(row.contains("2.000"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = LatencyTimeline::with_interval(0);
    }
}
