//! Compares the all-at-once, fluid, batched and optimized migration strategies
//! on the key-count workload and prints each strategy's migration duration and
//! maximum service latency — a miniature of the paper's Figure 1.
//!
//! Run with: `cargo run --release --example strategies_compare`

use megaphone::prelude::MigrationStrategy;
use mp_harness::nanos_to_millis;

fn main() {
    // The experiment runner lives in the benchmark crate; this example drives a
    // scaled-down configuration of it.
    let base = mp_bench::keycount::Params {
        workers: 2,
        bin_shift: 6,
        domain: 1 << 18,
        rate: 50_000,
        runtime_ms: 2_000,
        migrate_at_ms: 800,
        strategy: None,
        hash_state: false,
        epoch_ms: 50,
    };
    println!("strategy       duration[ms]   max latency[ms]   steady max[ms]");
    for strategy in [
        MigrationStrategy::AllAtOnce,
        MigrationStrategy::Fluid,
        MigrationStrategy::Batched(8),
        MigrationStrategy::Optimized,
    ] {
        let result = mp_bench::keycount::run(mp_bench::keycount::Params {
            strategy: Some(strategy),
            ..base
        });
        let (duration, max_latency) = result.migration.unwrap_or((0, 0));
        println!(
            "{:<14} {:>12.1} {:>17.1} {:>16.1}",
            strategy.name(),
            duration as f64 / 1e6,
            nanos_to_millis(max_latency),
            nanos_to_millis(result.steady_max),
        );
    }
}
