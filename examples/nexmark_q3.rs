//! NEXMark Q3 (who is selling in particular states?) with a live migration:
//! the incremental join's state is re-balanced mid-stream with a batched
//! migration while results keep flowing.
//!
//! Run with: `cargo run --release --example nexmark_q3`

use megaphone::prelude::*;
use nexmark::{build_query, NexmarkConfig, NexmarkGenerator};
use timelite::prelude::*;

fn main() {
    let results = timelite::execute(Config::process(2), |worker| {
        let index = worker.index();
        let peers = worker.peers();
        let mega_config = MegaphoneConfig::new(6);
        let rows = std::rc::Rc::new(std::cell::RefCell::new(0u64));

        let rows_inner = rows.clone();
        let (mut control, mut events_in, output) = worker.dataflow::<u64, _, _>(|scope| {
            let (control_input, control) = scope.new_input::<ControlInst>();
            let (event_input, events) = scope.new_input::<nexmark::Event>();
            let output = build_query("q3", mega_config, &control, &events);
            output.stream.inspect(move |time, row| {
                let mut rows = rows_inner.borrow_mut();
                *rows += 1;
                if *rows <= 10 {
                    println!("[worker ?] t={time} {row}");
                }
            });
            (control_input, event_input, output)
        });

        let generator = NexmarkGenerator::new(NexmarkConfig::with_rate(10_000));
        let epochs = 40u64;
        let events_per_epoch = 1_000u64;
        let plan = plan_migration(
            MigrationStrategy::Batched(8),
            &balanced_assignment(mega_config.bins(), peers),
            &imbalanced_assignment(mega_config.bins(), peers),
        );
        let mut controller = MigrationController::<u64>::new(plan, false);

        for epoch in 0..epochs {
            let start = epoch * events_per_epoch;
            for event_index in (start..start + events_per_epoch).filter(|i| i % peers as u64 == index as u64) {
                events_in.send(generator.event(event_index));
            }
            if index == 0 && epoch >= epochs / 2 && !controller.is_complete() {
                controller.advance(&output.probe, &mut control);
            }
            let next_ms = (epoch + 1) * 100;
            control.advance_to(next_ms + 100);
            events_in.advance_to(next_ms);
            worker.step_while(|| output.probe.less_than(&next_ms));
        }
        drop(control);
        drop(events_in);
        worker.step_until_complete();
        let total = *rows.borrow();
        total
    });
    println!("Q3 result rows per worker: {results:?}");
}
