//! Controller-driven rescaling: a key-count computation starts on two of four
//! workers, and a batched migration spreads its state over all four — the
//! "scale out" use case from the paper's introduction, driven through the
//! `MigrationController` exactly like an external controller (e.g. DS2) would.
//!
//! Run with: `cargo run --release --example rescaling`

use megaphone::prelude::*;
use timelite::hashing::hash_code;
use timelite::prelude::*;

fn main() {
    let summaries = timelite::execute(Config::process(4), |worker| {
        let index = worker.index();
        let peers = worker.peers();
        let config = MegaphoneConfig::new(8);
        let processed = std::rc::Rc::new(std::cell::RefCell::new(0u64));

        let processed_inner = processed.clone();
        let (mut control, mut input, output) = worker.dataflow::<u64, _, _>(|scope| {
            let (control_input, control) = scope.new_input::<ControlInst>();
            let (data_input, data) = scope.new_input::<u64>();
            let output = stateful_unary::<_, u64, Vec<u64>, u64, _, _>(
                config,
                &control,
                &data,
                "KeyCount",
                hash_code,
                move |_time, records, state, _notificator| {
                    *processed_inner.borrow_mut() += records.len() as u64;
                    state.push(records.len() as u64);
                    Vec::new()
                },
            );
            (control_input, data_input, output)
        });

        // Initially everything lives on workers 0 and 1.
        let two_workers: Vec<usize> = (0..config.bins()).map(|bin| bin % 2).collect();
        let four_workers = balanced_assignment(config.bins(), peers);
        if index == 0 {
            control.send(ControlInst::Map(two_workers.clone()));
        }

        // Plan a batched migration from 2 workers to 4.
        let plan = plan_migration(MigrationStrategy::Batched(32), &two_workers, &four_workers);
        let mut controller = MigrationController::<u64>::new(plan, true);

        for round in 0..40u64 {
            for key in 0..200u64 {
                input.send(key * peers as u64 + index as u64);
            }
            // Start rescaling at round 10, driven by worker 0's controller.
            if index == 0 && round >= 10 && !controller.is_complete() {
                let status = controller.advance(&output.probe, &mut control);
                if status == ControllerStatus::Issued {
                    println!("round {round}: issued migration step {}", controller.issued_steps());
                }
            }
            control.advance_to(round + 2);
            input.advance_to(round + 1);
            worker.step_while(|| output.probe.less_than(&(round + 1)));
        }
        drop(control);
        drop(input);
        worker.step_until_complete();
        let count = *processed.borrow();
        (index, count)
    });

    println!("\nrecords processed per worker (before + after rescaling):");
    for (index, processed) in summaries {
        println!("  worker {index}: {processed}");
    }
}
