//! Quickstart: a migrateable word-count dataflow (the paper's Listing 2).
//!
//! Two workers count words; halfway through, every bin is moved to worker 1
//! with a single all-at-once command, and the counts keep accumulating
//! seamlessly on the new owner.
//!
//! Run with: `cargo run --example quickstart`

use megaphone::prelude::*;
use timelite::prelude::*;

fn main() {
    let text = ["a", "streaming", "dataflow", "migrates", "state", "without", "pausing", "a", "dataflow"];

    timelite::execute(Config::process(2), move |worker| {
        let index = worker.index();
        let config = MegaphoneConfig::new(4);

        // Build the dataflow: a control input, a word input, and a migrateable
        // word-count operator (Listing 2 of the paper).
        let (mut control, mut words, output) = worker.dataflow::<u64, _, _>(|scope| {
            let (control_input, control) = scope.new_input::<ControlInst>();
            let (word_input, words) = scope.new_input::<(String, i64)>();
            let output = state_machine::<_, String, i64, i64, (String, i64), _>(
                config,
                &control,
                &words,
                "WordCount",
                |word, diff, count| {
                    *count += diff;
                    (false, vec![(word.clone(), *count)])
                },
            );
            let worker_id = scope.index();
            output.stream.inspect(move |time, (word, count)| {
                println!("[worker {worker_id}] t={time} {word:>10} -> {count}");
            });
            (control_input, word_input, output)
        });

        // Rounds 0..4: both workers feed words.
        for round in 0..4u64 {
            if index == 0 {
                for word in &text {
                    words.send((word.to_string(), 1));
                }
            }
            // Round 2: migrate every bin to worker 1.
            if round == 2 && index == 0 {
                println!("--- migrating all state to worker 1 ---");
                control.send(ControlInst::Map(vec![1; config.bins()]));
            }
            control.advance_to(round + 1);
            words.advance_to(round + 1);
            worker.step_while(|| output.probe.less_than(&(round + 1)));
        }
        drop(control);
        drop(words);
        worker.step_until_complete();
    });
}
