//! Smoke test: every file in `examples/` must build and run to completion.
//!
//! The examples are the repository's executable documentation; compiling them
//! is already enforced by `cargo test`, but this test additionally *runs* each
//! one (they are all bounded, small configurations) so that a runtime
//! regression — a panic, a hang resolved by deadlock detection, a stale API —
//! cannot rot silently. New examples are picked up automatically.

use std::path::Path;
use std::process::Command;

#[test]
fn every_example_runs_to_completion() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let examples_dir = Path::new(manifest_dir).join("examples");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());

    let mut names: Vec<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? == "rs" {
                Some(path.file_stem()?.to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no examples found in {}", examples_dir.display());

    for name in &names {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(manifest_dir)
            .output()
            .expect("cargo is runnable from tests");
        assert!(
            output.status.success(),
            "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
