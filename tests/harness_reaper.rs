//! The harness cleans up after itself when the *parent* fails: a panic inside
//! the parent's share of a [`mp_harness::cluster_run`] computation must not
//! leak the forked child processes (real OS processes that would otherwise
//! park for minutes) or their scratch files. The drop-guard inside the
//! harness SIGKILLs and reaps the recorded children on unwind; this test
//! panics on purpose and then checks `/proc` for survivors.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where each cluster process records its OS pid. Parent and forked children
/// re-enter this test with different pids, so the path is derived from the
/// test name alone.
fn pid_dir() -> PathBuf {
    std::env::temp_dir().join("mp-reaper-leak-pids")
}

#[test]
fn parent_panic_reaps_cluster_children() {
    let dir = pid_dir();
    // Forked children re-enter this test body from the top; only the parent
    // (no cluster role in the environment) resets the pid directory.
    if std::env::var("MP_CLUSTER_PROCESS").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("failed to create the pid directory");
    }

    let handle = std::thread::spawn(|| {
        mp_harness::cluster_run("parent_panic_reaps_cluster_children", 2, 1, move |worker| {
            let dir = pid_dir();
            std::fs::write(dir.join(std::process::id().to_string()), b"alive")
                .expect("failed to record this process's pid");
            if worker.index() == 0 {
                // Parent-side worker: wait until the child has recorded its
                // pid (so the outer assertions have something to check), then
                // blow up mid-computation.
                let deadline = Instant::now() + Duration::from_secs(30);
                while std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) < 2 {
                    assert!(Instant::now() < deadline, "cluster child never recorded its pid");
                    std::thread::sleep(Duration::from_millis(20));
                }
                panic!("deliberate parent-side worker panic");
            }
            // Child-side worker: park until the parent's reaper kills this
            // process. Bounded, so a broken reaper turns into a loud child
            // that the liveness check below still observes.
            for _ in 0..300 {
                std::thread::sleep(Duration::from_millis(100));
            }
            0u64
        })
    });
    assert!(
        handle.join().is_err(),
        "the worker panic must propagate out of cluster_run to the caller"
    );

    // The reaper killed *and reaped* the children before the unwind left
    // cluster_run, so their /proc entries must already be gone.
    let own = std::process::id().to_string();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("pid directory must be readable") {
        let pid = entry.expect("pid entry").file_name().into_string().expect("utf-8 pid");
        if pid == own {
            continue;
        }
        checked += 1;
        assert!(
            !PathBuf::from(format!("/proc/{pid}")).exists(),
            "cluster child {pid} outlived the parent panic — the reaper leaked it"
        );
    }
    assert_eq!(checked, 1, "expected exactly one forked child to have recorded its pid");
    let _ = std::fs::remove_dir_all(&dir);
}
