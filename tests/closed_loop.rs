//! Closed-loop rebalancing under adversarial skew, end to end and
//! deterministic: the NEXMark workload engine drives zipfian bid skew into a
//! stateful operator, the controller samples live bin loads, detects the
//! imbalance, submits a migration through the control stream, and the run
//! ends balanced. Logical (unpaced) mode steps the dataflow to quiescence
//! every epoch and barrier-synchronizes stat sampling, so every controller
//! decision is a pure function of the configuration — the assertions hold on
//! every run, not just on a quiet machine.

use megaphone::prelude::MigrationStrategy;
use mp_bench::skew_run::{run, Params};
use mp_harness::ReactionEvent;

/// The deterministic base configuration: small but realistic scale.
fn base_params() -> Params {
    Params {
        query: "bidcount",
        workers: 2,
        bin_shift: 6,
        rate: 50_000,
        runtime_ms: 6_000,
        epoch_ms: 50,
        zipf_hundredths: 120,
        zipf_pool: 64,
        skew_at_ms: 1_000,
        rotate_every_ms: 0,
        ooo_lag_ms: 0,
        burst: (0, 0, 1),
        strategy: MigrationStrategy::Batched(8),
        sample_every_ms: 500,
        warmup_ms: 500,
        threshold: 1.2,
        min_records: 500,
        paced: false,
        ctl: None,
    }
}

#[test]
fn skewed_run_triggers_a_migration_and_ends_balanced() {
    let result = run(base_params());
    assert!(
        result.migrations_started >= 1,
        "zipf skew must trigger at least one controller migration, got {}",
        result.migrations_started
    );
    assert!(
        result.migrations_completed >= 1,
        "the triggered migration must complete within the run"
    );
    assert!(result.steps_issued >= 1);
    assert!(
        result.detection_imbalance > 1.2,
        "the detection must have seen the skew, got ratio {}",
        result.detection_imbalance
    );
    assert!(
        result.final_imbalance < 1.25,
        "post-migration load must be balanced, got max/mean {}",
        result.final_imbalance
    );
    assert!(
        result.reaction.first(ReactionEvent::SkewOnset).is_some()
            && result.reaction.first(ReactionEvent::Detection).is_some()
            && result.reaction.first(ReactionEvent::MigrationStart).is_some()
            && result.reaction.first(ReactionEvent::MigrationEnd).is_some(),
        "the reaction timeline must carry the full milestone sequence: {:?}",
        result.reaction.events()
    );
    // The milestones appear in causal order.
    let onset = result.reaction.first(ReactionEvent::SkewOnset).unwrap();
    let detection = result.reaction.first(ReactionEvent::Detection).unwrap();
    let start = result.reaction.first(ReactionEvent::MigrationStart).unwrap();
    let end = result.reaction.first(ReactionEvent::MigrationEnd).unwrap();
    assert!(onset <= detection && detection <= start && start <= end);
}

#[test]
fn unskewed_run_triggers_no_migration() {
    let params = Params { zipf_hundredths: 0, ..base_params() };
    let result = run(params);
    assert_eq!(
        result.migrations_started, 0,
        "uniform load must not trigger the controller (last imbalance {})",
        result.detection_imbalance
    );
    assert_eq!(result.steps_issued, 0);
    assert!(result.reaction.first(ReactionEvent::Detection).is_none());
    // Uniform load under round-robin is balanced on its own.
    assert!(
        result.final_imbalance < 1.25,
        "uniform load should be balanced, got {}",
        result.final_imbalance
    );
}

#[test]
fn hot_key_rotation_re_triggers_the_loop() {
    // A mid-run rotation moves the hot keys; the controller must react to the
    // new phase too (the assignment it converged to is now wrong).
    let params = Params {
        runtime_ms: 9_000,
        rotate_every_ms: 4_000,
        ..base_params()
    };
    let result = run(params);
    assert!(
        result.reaction.first(ReactionEvent::HotKeyRotation).is_some(),
        "the rotation milestone must be recorded"
    );
    assert!(
        result.migrations_started >= 2,
        "skew onset and hot-key rotation must each trigger a migration, got {} ({:?})",
        result.migrations_started,
        result.reaction.events()
    );
    assert!(
        result.final_imbalance < 1.25,
        "the loop must re-balance after the rotation, got {}",
        result.final_imbalance
    );
}

/// Tier-1 smoke test of the `skew_timeline` experiment driver: a tiny paced
/// run must exit cleanly, print the milestone/timeline report, and emit the
/// phase-annotated reaction CSV.
#[test]
fn skew_timeline_driver_runs_at_tiny_scale() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let csv = std::env::temp_dir().join(format!("skew-timeline-smoke-{}.csv", std::process::id()));
    let output = std::process::Command::new(&cargo)
        .args([
            "run",
            "--quiet",
            "-p",
            "mp-bench",
            "--bin",
            "skew_timeline",
            "--",
            "--workers",
            "2",
            "--bin-shift",
            "5",
            "--rate",
            "20000",
            "--runtime-ms",
            "1500",
            "--skew-at-ms",
            "500",
            "--warmup-ms",
            "250",
            "--csv",
            csv.to_str().expect("utf-8 temp path"),
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("cargo is runnable from tests");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "skew_timeline exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        stdout,
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("reaction milestones"), "missing milestone report:\n{stdout}");
    assert!(stdout.contains("latency timeline"), "missing timeline report:\n{stdout}");
    let contents = std::fs::read_to_string(&csv).expect("reaction CSV must be written");
    assert!(contents.starts_with("time_s,max_ms,p99_ms,p50_ms,p25_ms,phase"));
    assert!(contents.lines().count() > 2, "CSV must carry timeline rows:\n{contents}");
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn closed_loop_decisions_are_deterministic() {
    let first = run(base_params());
    let second = run(base_params());
    assert_eq!(first.migrations_started, second.migrations_started);
    assert_eq!(first.migrations_completed, second.migrations_completed);
    assert_eq!(first.steps_issued, second.steps_issued);
    assert_eq!(first.final_assignment, second.final_assignment);
    assert_eq!(first.detection_imbalance, second.detection_imbalance);
    assert_eq!(first.final_imbalance, second.final_imbalance);
}
