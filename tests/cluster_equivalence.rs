//! The cluster equivalence evidence: the same NEXMark dataflow — including a
//! mid-run migration of every bin — produces byte-identical ordered outputs
//! whether its workers are one thread, several threads in one process, or
//! spread across two OS processes connected by TCP (serialization on every
//! cross-worker path), deterministically across repeated runs.
//!
//! Cluster runs execute first in each test: the forked child processes
//! (`mp_harness::cluster_run`'s env-var re-entry) re-run this test function
//! from the top, and servicing the fork before the in-process modes keeps the
//! children's replay work minimal.

use std::cell::RefCell;
use std::rc::Rc;

use megaphone::prelude::*;
use nexmark::{build_query, NexmarkConfig, NexmarkGenerator};
use timelite::prelude::*;

/// Total events generated per run (split across workers).
const EVENTS_TOTAL: u64 = 20_000;
/// Event-time milliseconds per input epoch.
const EPOCH_MS: u64 = 100;
/// Events per second of event time.
const RATE: u64 = 10_000;

/// The per-worker body shared by every mode: builds `query` with Megaphone
/// operators, feeds this worker's slice of the generated stream in 100 ms
/// epochs, migrates every bin to the next worker halfway through, and returns
/// the rows this worker's final operator emitted.
fn query_run(query: &'static str) -> impl Fn(&mut Worker) -> Vec<String> + Send + Sync + 'static {
    move |worker| {
        let index = worker.index();
        let peers = worker.peers();
        let mega_config = MegaphoneConfig::new(4);

        let (mut control, mut input, output, collected) = worker.dataflow::<u64, _, _>(|scope| {
            let (control_input, control) = scope.new_input::<ControlInst>();
            let (event_input, events) = scope.new_input::<nexmark::Event>();
            let collected = Rc::new(RefCell::new(Vec::new()));
            let collected_inner = collected.clone();
            let output = build_query(query, mega_config, &control, &events);
            output.stream.inspect(move |_t, row| collected_inner.borrow_mut().push(row.clone()));
            (control_input, event_input, output, collected)
        });

        let generator = NexmarkGenerator::new(NexmarkConfig::with_rate(RATE));
        let events_per_epoch = RATE * EPOCH_MS / 1_000;
        let epochs = EVENTS_TOTAL / events_per_epoch;
        for epoch in 0..epochs {
            let start = epoch * events_per_epoch;
            for position in start..start + events_per_epoch {
                if position % peers as u64 == index as u64 {
                    input.send(generator.event(position));
                }
            }
            if index == 0 && epoch == epochs / 2 {
                // Mid-run migration: every bin moves to the next worker (a
                // no-op re-assignment under a single worker), crossing the
                // process boundary for half the bins in cluster mode.
                let map = (0..mega_config.bins()).map(|bin| (bin + 1) % peers).collect();
                control.send(ControlInst::Map(map));
            }
            let next = (epoch + 1) * EPOCH_MS;
            control.advance_to(next + EPOCH_MS);
            input.advance_to(next);
            worker.step_while(|| output.probe.less_than(&next));
        }
        drop(control);
        drop(input);
        worker.step_until_complete();
        let rows = collected.borrow().clone();
        rows
    }
}

/// Flattens per-worker rows into the canonical ordered output.
fn ordered(outputs: Vec<Vec<String>>) -> Vec<String> {
    let mut rows: Vec<String> = outputs.into_iter().flatten().collect();
    rows.sort();
    rows
}

/// Runs `query` under all three modes, three times each, and asserts every
/// run of every mode produces the same ordered rows.
fn assert_equivalence(test_name: &str, query: &'static str) {
    // Cluster first: forked children re-enter this test and exit at their
    // cluster_run call, before the in-process modes below would run.
    let cluster: Vec<Vec<String>> = (0..3)
        .map(|_| ordered(mp_harness::cluster_run(test_name, 2, 2, query_run(query))))
        .collect();
    let thread: Vec<Vec<String>> =
        (0..3).map(|_| ordered(timelite::execute(Config::thread(), query_run(query)))).collect();
    let process: Vec<Vec<String>> =
        (0..3).map(|_| ordered(timelite::execute(Config::process(4), query_run(query)))).collect();

    assert!(!thread[0].is_empty(), "{query} produced no output");
    for (run, rows) in thread.iter().enumerate().skip(1) {
        assert_eq!(rows, &thread[0], "{query} thread run {run} diverged");
    }
    for (run, rows) in process.iter().enumerate() {
        assert_eq!(rows, &thread[0], "{query} process run {run} diverged from thread mode");
    }
    for (run, rows) in cluster.iter().enumerate() {
        assert_eq!(rows, &thread[0], "{query} cluster run {run} diverged from thread mode");
    }
}

#[test]
fn q5_cluster_equivalence() {
    assert_equivalence("q5_cluster_equivalence", "q5");
}

#[test]
fn q8_cluster_equivalence() {
    assert_equivalence("q8_cluster_equivalence", "q8");
}
