//! Exercises `scripts/bench-compare.sh`, the CI regression gate over the
//! per-commit bench CSVs: within-threshold drift passes, a >2x regression of a
//! tracked hot path fails, and untracked benchmarks are ignored.

use std::io::Write;
use std::process::Command;

fn write_csv(dir: &std::path::Path, name: &str, rows: &[(&str, f64)]) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path).expect("create fixture csv");
    writeln!(file, "commit,benchmark,mean_ns_per_iter,iterations").unwrap();
    for (bench, mean) in rows {
        writeln!(file, "deadbeef,{bench},{mean:.3},1000").unwrap();
    }
    path
}

fn run_compare(previous: &std::path::Path, current: &std::path::Path) -> (bool, String) {
    let script = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/bench-compare.sh");
    let output = Command::new("bash")
        .arg(&script)
        .arg(previous)
        .arg(current)
        .output()
        .expect("run bench-compare.sh");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.success(), text)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-guard-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn within_threshold_drift_passes() {
    let dir = temp_dir("pass");
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("routing_lookup/0", 100.0), ("key_to_bin/12", 10.0), ("bin_encode/1000", 5000.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("routing_lookup/0", 180.0), ("key_to_bin/12", 9.0), ("bin_encode/1000", 9000.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(ok, "sub-2x drift must pass, got:\n{text}");
    assert!(text.contains("ok routing_lookup/0"), "unexpected output:\n{text}");
}

#[test]
fn large_regression_of_tracked_path_fails() {
    let dir = temp_dir("fail");
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("exchange_throughput/4", 1000.0), ("key_to_bin/12", 10.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("exchange_throughput/4", 2500.0), ("key_to_bin/12", 10.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(!ok, "a 2.5x regression must fail the gate, got:\n{text}");
    assert!(text.contains("REGRESSION exchange_throughput/4"), "unexpected output:\n{text}");
}

#[test]
fn untracked_benchmarks_do_not_gate() {
    let dir = temp_dir("untracked");
    // `plan_migration` regresses 10x but is not in the tracked set.
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("plan_migration/fluid", 100.0), ("bin_encode/1000", 100.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("plan_migration/fluid", 1000.0), ("bin_encode/1000", 110.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(ok, "untracked benchmarks must not fail the gate, got:\n{text}");
    assert!(!text.contains("plan_migration"), "untracked bench leaked into output:\n{text}");
}

#[test]
fn skew_reaction_is_in_the_tracked_set() {
    // The closed-loop reaction benches joined the guarded hot paths: a large
    // regression of the controller's observe→plan step must fail the gate.
    let dir = temp_dir("skew");
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("skew_reaction/observe_plan/256", 5_000.0), ("skew_reaction/zipf_event", 50.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("skew_reaction/observe_plan/256", 15_000.0), ("skew_reaction/zipf_event", 55.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(!ok, "a 3x observe_plan regression must fail the gate, got:\n{text}");
    assert!(text.contains("REGRESSION skew_reaction/observe_plan/256"), "output:\n{text}");
    assert!(text.contains("ok skew_reaction/zipf_event"), "output:\n{text}");
}

#[test]
fn durable_migration_is_in_the_tracked_set() {
    // The WAL-backed install path joined the guarded hot paths: a large
    // regression of the durable migration bench must fail the gate.
    let dir = temp_dir("durable");
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("bin_migrate_large_durable/install/100KB", 200_000.0), ("key_to_bin/12", 10.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("bin_migrate_large_durable/install/100KB", 600_000.0), ("key_to_bin/12", 10.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(!ok, "a 3x durable install regression must fail the gate, got:\n{text}");
    assert!(
        text.contains("REGRESSION bin_migrate_large_durable/install/100KB"),
        "output:\n{text}"
    );
}

#[test]
fn saturation_is_in_the_tracked_set() {
    // The open-loop saturation bench joined the guarded hot paths: its mean
    // iteration time is pinned at the schedule's epoch length while the data
    // plane sustains the offered load, so a mean far above that floor means
    // the fabric can no longer keep up and must fail the gate.
    let dir = temp_dir("saturation");
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("saturation/openloop_1m", 1_000_000.0), ("key_to_bin/12", 10.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("saturation/openloop_1m", 3_000_000.0), ("key_to_bin/12", 10.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(!ok, "a 3x saturation regression must fail the gate, got:\n{text}");
    assert!(text.contains("REGRESSION saturation/openloop_1m"), "output:\n{text}");
}

#[test]
fn multi_tenant_steady_is_in_the_tracked_set() {
    // The demand-driven scheduler's headline bench joined the guarded hot
    // paths: a large regression of the per-step cost with many idle tenant
    // dataflows (a return toward schedule-everything O(N) stepping) must fail
    // the gate.
    let dir = temp_dir("tenants");
    let previous = write_csv(
        &dir,
        "prev.csv",
        &[("multi_tenant_steady/active_step/32", 1_500.0), ("key_to_bin/12", 10.0)],
    );
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("multi_tenant_steady/active_step/32", 4_500.0), ("key_to_bin/12", 10.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(!ok, "a 3x multi-tenant step regression must fail the gate, got:\n{text}");
    assert!(text.contains("REGRESSION multi_tenant_steady/active_step/32"), "output:\n{text}");
}

#[test]
fn missing_previous_csv_is_a_logged_skip_not_a_silent_pass() {
    // First run of the gate: no previous CSV exists at all. The script must
    // say "no baseline" and skip cleanly instead of erroring on the absent
    // file (or pretending a comparison happened).
    let dir = temp_dir("missing-prev");
    let previous = dir.join("does-not-exist.csv");
    let current = write_csv(&dir, "curr.csv", &[("key_to_bin/12", 10.0)]);
    let (ok, text) = run_compare(&previous, &current);
    assert!(ok, "a missing baseline must skip, not fail, got:\n{text}");
    assert!(text.contains("no baseline"), "the skip must be logged explicitly:\n{text}");
    assert!(text.contains("missing"), "the log must name the cause:\n{text}");
    assert!(!text.contains("ok key_to_bin"), "nothing must be 'compared' without a baseline:\n{text}");
}

#[test]
fn header_only_previous_csv_is_a_logged_skip_not_a_silent_pass() {
    // A previous CSV that exists but carries no data rows (e.g. a truncated
    // artifact) is equally baseline-less: log and skip, don't silently pass.
    let dir = temp_dir("empty-prev");
    let previous = write_csv(&dir, "prev.csv", &[]);
    let current = write_csv(&dir, "curr.csv", &[("key_to_bin/12", 10.0)]);
    let (ok, text) = run_compare(&previous, &current);
    assert!(ok, "an empty baseline must skip, not fail, got:\n{text}");
    assert!(text.contains("no baseline"), "the skip must be logged explicitly:\n{text}");
    assert!(text.contains("no data rows"), "the log must name the cause:\n{text}");
}

#[test]
fn new_benchmark_without_baseline_passes() {
    let dir = temp_dir("new");
    let previous = write_csv(&dir, "prev.csv", &[("key_to_bin/12", 10.0)]);
    let current = write_csv(
        &dir,
        "curr.csv",
        &[("key_to_bin/12", 11.0), ("bin_encode/1000", 5000.0)],
    );
    let (ok, text) = run_compare(&previous, &current);
    assert!(ok, "a benchmark with no baseline cannot regress, got:\n{text}");
    assert!(text.contains("no baseline"), "unexpected output:\n{text}");
}
