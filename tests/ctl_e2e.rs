//! End-to-end test of the live control surface: a `CtlClient` attaches to a
//! running Q5 pipeline over TCP, tails the snapshot stream, and commands a
//! migration mid-run — and the driven run's output stays byte-identical (via
//! the order-independent digest) to an undriven oracle run over the same
//! input, because Megaphone migrations never change *what* is computed, only
//! *where*.

use std::time::Duration;

use megaphone::prelude::MigrationStrategy;
use megaphone::{CtlClient, CtlCommand};
use mp_bench::skew_run::{run, Params};

/// A paced (wall-clock) uniform-load Q5 run: long enough for a client to
/// attach and interact, with the closed-loop controller present but inert
/// (uniform load never crosses the huge threshold), so the only migration
/// that can happen is the one the client commands.
fn base_params(ctl: Option<&'static str>) -> Params {
    Params {
        query: "q5",
        workers: 2,
        bin_shift: 5,
        rate: 20_000,
        runtime_ms: 5_000,
        epoch_ms: 50,
        zipf_hundredths: 0,
        zipf_pool: 64,
        skew_at_ms: 1_000,
        rotate_every_ms: 0,
        ooo_lag_ms: 0,
        burst: (0, 0, 1),
        strategy: MigrationStrategy::Batched(8),
        sample_every_ms: 250,
        warmup_ms: 250,
        threshold: 1e9,
        min_records: 500,
        paced: true,
        ctl,
    }
}

#[test]
fn ctl_client_drives_a_migration_without_changing_the_output() {
    // A fresh loopback port for the driver's control endpoint; leaked because
    // `Params::ctl` is a `&'static str` (driver flags live for the process).
    let addr: &'static str =
        Box::leak(mp_harness::free_addresses(1).remove(0).into_boxed_str());

    let driven = std::thread::spawn(move || run(base_params(Some(addr))));

    let mut client =
        CtlClient::connect_retry(addr, Duration::from_secs(10)).expect("connect to the driver");
    client.set_recv_timeout(Some(Duration::from_secs(15))).expect("set a receive timeout");

    // Tail the stream: at least two periodic snapshots must arrive, carrying
    // a sane view of the run (two workers, a full assignment, no migration).
    let first = client.recv_snapshot().expect("first snapshot");
    let second = client.recv_snapshot().expect("second snapshot");
    assert!(second.seq > first.seq, "snapshot sequence must advance");
    assert_eq!(second.workers.len(), 2, "one load entry per worker");
    assert_eq!(second.assignment.len(), 32, "bin_shift 5 means 32 assigned bins");
    assert_eq!(second.migration.started, 0, "the inert controller must not have migrated");
    assert_eq!(second.workload, "uniform");

    // Command a migration: the first worker-0 bin moves to worker 1.
    let bin = second
        .assignment
        .iter()
        .position(|&worker| worker == 0)
        .expect("some bin lives on worker 0") as u64;
    client.send(&CtlCommand::Migrate { bin, worker: 1 }).expect("send the migrate command");

    // Keep tailing until the stream ends with the run; the migration must
    // show up as started, and the settled final snapshot (published after the
    // drain phase) must show the bin on its new worker.
    let mut last = second;
    while let Ok(snapshot) = client.recv_snapshot() {
        assert!(snapshot.seq > last.seq);
        last = snapshot;
    }
    assert_eq!(last.migration.started, 1, "the commanded migration must have started");
    assert_eq!(last.migration.completed, 1, "the commanded migration must have completed");
    assert!(!last.migration.in_flight, "the run must end settled");
    assert_eq!(
        last.assignment[bin as usize], 1,
        "the final snapshot must show bin {bin} on worker 1"
    );

    let driven = driven.join().expect("driven run must not panic");
    assert!(driven.snapshots_published >= 2, "got {} snapshots", driven.snapshots_published);
    assert_eq!(driven.migrations_started, 1);
    assert_eq!(driven.migrations_completed, 1);
    assert_eq!(driven.final_assignment[bin as usize], 1, "the run state agrees with the wire");
    assert!(driven.output_rows > 0, "Q5 must produce rows at this scale");

    // The oracle: the identical run with no control endpoint and no commands.
    let oracle = run(base_params(None));
    assert_eq!(oracle.migrations_started, 0, "the oracle must be undriven");
    assert_eq!(oracle.snapshots_published, 0);
    assert_eq!(
        driven.output_rows, oracle.output_rows,
        "the commanded migration must not change how many rows Q5 emits"
    );
    assert_eq!(
        driven.output_digest, oracle.output_digest,
        "the commanded migration must not change Q5's output (order-independent digest)"
    );
}
