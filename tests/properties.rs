//! Property-based tests over the workspace's core data structures and planners.

use megaphone::prelude::*;
use megaphone::RoutingTable;
use proptest::prelude::*;
use timelite::progress::{Antichain, MutableAntichain};

proptest! {
    /// Codec round-trips arbitrary nested values.
    #[test]
    fn codec_roundtrips_nested_values(values in proptest::collection::vec((any::<u64>(), ".{0,16}", any::<Option<i64>>()), 0..50)) {
        let bytes = values.encode_to_vec();
        let decoded = Vec::<(u64, String, Option<i64>)>::decode_from_slice(&bytes);
        prop_assert_eq!(values, decoded);
    }

    /// The frontier of a MutableAntichain is always the set of minimal elements
    /// with positive count, regardless of the update order.
    #[test]
    fn mutable_antichain_frontier_is_minimal(updates in proptest::collection::vec((0u64..50, 1i64..4), 0..40)) {
        let mut antichain = MutableAntichain::new();
        let mut counts = std::collections::HashMap::new();
        for (time, diff) in &updates {
            antichain.update_iter_and_ignore(Some((*time, *diff)));
            *counts.entry(*time).or_insert(0i64) += diff;
        }
        let minimum = counts.iter().filter(|(_, c)| **c > 0).map(|(t, _)| *t).min();
        match minimum {
            None => prop_assert!(antichain.is_empty()),
            Some(min) => {
                prop_assert!(antichain.less_equal(&min));
                prop_assert!(!antichain.less_than(&min));
            }
        }
    }

    /// Antichain insertion keeps only minimal elements.
    #[test]
    fn antichain_keeps_minimal_elements(values in proptest::collection::vec(0u64..1000, 1..50)) {
        let antichain: Antichain<u64> = values.iter().copied().collect();
        let minimum = *values.iter().min().expect("non-empty");
        prop_assert_eq!(antichain.elements(), &[minimum]);
    }

    /// Every migration strategy's plan moves exactly the changed bins, once each.
    #[test]
    fn plans_cover_exactly_the_changed_bins(
        current in proptest::collection::vec(0usize..4, 16..64),
        target_seed in proptest::collection::vec(0usize..4, 16..64),
        batch in 1usize..8,
    ) {
        let bins = current.len().min(target_seed.len());
        let current = &current[..bins];
        let target = &target_seed[..bins];
        let changed: std::collections::BTreeSet<usize> = (0..bins).filter(|&b| current[b] != target[b]).collect();
        for strategy in [MigrationStrategy::AllAtOnce, MigrationStrategy::Fluid, MigrationStrategy::Batched(batch), MigrationStrategy::Optimized] {
            let plan = plan_migration(strategy, current, target);
            let mut moved = std::collections::BTreeSet::new();
            for step in &plan.steps {
                for (bin, worker) in step {
                    prop_assert_eq!(*worker, target[*bin]);
                    prop_assert!(moved.insert(*bin), "bin moved twice");
                }
            }
            prop_assert_eq!(&moved, &changed);
        }
    }

    /// Routing lookups always agree with a naive replay of the updates.
    #[test]
    fn routing_lookup_matches_naive_replay(
        updates in proptest::collection::vec((0u64..20, 0usize..8, 0usize..4), 0..30),
        query_time in 0u64..25,
        query_bin in 0usize..8,
    ) {
        let mut table = RoutingTable::<u64>::new(vec![0; 8]);
        for (time, bin, worker) in &updates {
            table.insert(*time, &ControlInst::Move(*bin, *worker));
        }
        // Naive: the last update with time <= query_time for that bin, in
        // (time, insertion order) order, else the base assignment.
        let mut sorted = updates.clone();
        sorted.sort_by_key(|(time, _, _)| *time);
        let expected = sorted
            .iter()
            .filter(|(time, bin, _)| *time <= query_time && *bin == query_bin)
            .map(|(_, _, worker)| *worker)
            .last()
            .unwrap_or(0);
        prop_assert_eq!(table.lookup(&query_time, query_bin), expected);
    }

    /// Key-to-bin mapping always lands within range and is deterministic.
    #[test]
    fn key_to_bin_is_in_range(shift in 0u32..16, key in any::<u64>()) {
        let config = MegaphoneConfig::new(shift);
        let bin = config.key_to_bin(key);
        prop_assert!(bin < config.bins());
        prop_assert_eq!(bin, config.key_to_bin(key));
    }
}
