//! Property-based tests over the workspace's core data structures and planners.
//!
//! The build environment is offline, so instead of `proptest` these tests use
//! a small deterministic xorshift generator and check each property over many
//! random cases. Failures print the seed of the offending case so it can be
//! replayed.

use megaphone::prelude::*;
use megaphone::RoutingTable;
use timelite::progress::{Antichain, MutableAntichain};

/// A deterministic xorshift64* generator: enough randomness for property
/// exploration, fully reproducible from the seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn vec_with<T>(&mut self, max_len: u64, mut item: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| item(self)).collect()
    }

    fn string(&mut self, max_len: u64) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| match self.below(4) {
                // Mostly printable ASCII, but a quarter of the characters are
                // multi-byte so byte-length vs char-count codec bugs surface.
                0 => char::from_u32(0x00a1 + self.below(0x4_0000) as u32).unwrap_or('\u{2603}'),
                _ => char::from_u32(0x20 + self.below(0x5e) as u32).unwrap(),
            })
            .collect()
    }
}

const CASES: u64 = 256;

/// Codec round-trips arbitrary nested values.
#[test]
fn codec_roundtrips_nested_values() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed * 2 + 1);
        let values: Vec<(u64, String, Option<i64>)> = rng.vec_with(50, |rng| {
            let number = rng.next();
            let text = rng.string(16);
            let optional = if rng.below(2) == 0 { None } else { Some(rng.next() as i64) };
            (number, text, optional)
        });
        let bytes = values.encode_to_vec();
        let decoded = Vec::<(u64, String, Option<i64>)>::decode_from_slice(&bytes);
        assert_eq!(values, decoded, "seed {seed}");
    }
}

/// The frontier of a MutableAntichain is always the set of minimal elements
/// with positive count, regardless of the update order.
#[test]
fn mutable_antichain_frontier_is_minimal() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed * 2 + 1);
        let updates: Vec<(u64, i64)> =
            rng.vec_with(40, |rng| (rng.below(50), 1 + rng.below(3) as i64));
        let mut antichain = MutableAntichain::new();
        let mut counts = std::collections::HashMap::new();
        for (time, diff) in &updates {
            antichain.update_iter_and_ignore(Some((*time, *diff)));
            *counts.entry(*time).or_insert(0i64) += diff;
        }
        let minimum = counts.iter().filter(|(_, count)| **count > 0).map(|(time, _)| *time).min();
        match minimum {
            None => assert!(antichain.is_empty(), "seed {seed}"),
            Some(min) => {
                assert!(antichain.less_equal(&min), "seed {seed}");
                assert!(!antichain.less_than(&min), "seed {seed}");
            }
        }
    }
}

/// Antichain insertion keeps only minimal elements.
#[test]
fn antichain_keeps_minimal_elements() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed * 2 + 1);
        let mut values: Vec<u64> = rng.vec_with(49, |rng| rng.below(1000));
        values.push(rng.below(1000));
        let antichain: Antichain<u64> = values.iter().copied().collect();
        let minimum = *values.iter().min().expect("non-empty");
        assert_eq!(antichain.elements(), &[minimum], "seed {seed}");
    }
}

/// Every migration strategy's plan moves exactly the changed bins, once each.
#[test]
fn plans_cover_exactly_the_changed_bins() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed * 2 + 1);
        let bins = 16 + rng.below(48) as usize;
        let current: Vec<usize> = (0..bins).map(|_| rng.below(4) as usize).collect();
        let target: Vec<usize> = (0..bins).map(|_| rng.below(4) as usize).collect();
        let batch = 1 + rng.below(7) as usize;
        let changed: std::collections::BTreeSet<usize> =
            (0..bins).filter(|&bin| current[bin] != target[bin]).collect();
        for strategy in [
            MigrationStrategy::AllAtOnce,
            MigrationStrategy::Fluid,
            MigrationStrategy::Batched(batch),
            MigrationStrategy::Optimized,
        ] {
            let plan = plan_migration(strategy, &current, &target);
            let mut moved = std::collections::BTreeSet::new();
            for step in &plan.steps {
                for (bin, worker) in step {
                    assert_eq!(*worker, target[*bin], "seed {seed}, {strategy:?}");
                    assert!(moved.insert(*bin), "bin moved twice: seed {seed}, {strategy:?}");
                }
            }
            assert_eq!(moved, changed, "seed {seed}, {strategy:?}");
        }
    }
}

/// Routing lookups always agree with a naive replay of the updates.
#[test]
fn routing_lookup_matches_naive_replay() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed * 2 + 1);
        let updates: Vec<(u64, usize, usize)> =
            rng.vec_with(30, |rng| (rng.below(20), rng.below(8) as usize, rng.below(4) as usize));
        let query_time = rng.below(25);
        let query_bin = rng.below(8) as usize;
        let mut table = RoutingTable::<u64>::new(vec![0; 8]);
        for (time, bin, worker) in &updates {
            table.insert(*time, &ControlInst::Move(*bin, *worker));
        }
        // Naive: the last update with time <= query_time for that bin, in
        // (time, insertion order) order, else the base assignment.
        let mut sorted = updates.clone();
        sorted.sort_by_key(|(time, _, _)| *time);
        let expected = sorted
            .iter()
            .filter(|(time, bin, _)| *time <= query_time && *bin == query_bin)
            .map(|(_, _, worker)| *worker)
            .next_back()
            .unwrap_or(0);
        assert_eq!(table.lookup(&query_time, query_bin), expected, "seed {seed}");
    }
}

/// Key-to-bin mapping always lands within range and is deterministic.
#[test]
fn key_to_bin_is_in_range() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed * 2 + 1);
        let shift = rng.below(16) as u32;
        let key = rng.next();
        let config = MegaphoneConfig::new(shift);
        let bin = config.key_to_bin(key);
        assert!(bin < config.bins(), "seed {seed}");
        assert_eq!(bin, config.key_to_bin(key), "seed {seed}");
    }
}
