//! Doc-drift guard: README's workspace documentation must stay in sync with
//! the Cargo workspace. Every workspace member needs a section or mention in
//! the README, the bench binaries table must list exactly the binaries that
//! exist, and the megaphone module table must cover the crate's real modules.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &str) -> String {
    std::fs::read_to_string(repo_root().join(path))
        .unwrap_or_else(|error| panic!("cannot read {path}: {error}"))
}

/// The member paths of `[workspace] members` in the root Cargo.toml.
fn workspace_members() -> Vec<String> {
    let manifest = read("Cargo.toml");
    // Not `default-members`: the canonical list is the `members` key.
    let start = manifest.find("\nmembers = [").expect("workspace members list");
    let list = &manifest[start..];
    let end = list.find(']').expect("members list closes");
    list[..end]
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let path = line.trim_matches('"');
            (line.starts_with('"')).then(|| path.to_string())
        })
        .collect()
}

#[test]
fn every_workspace_member_is_documented_in_the_readme() {
    let readme = read("README.md");
    let members = workspace_members();
    assert!(!members.is_empty(), "no workspace members parsed from Cargo.toml");
    for member in &members {
        assert!(
            readme.contains(member),
            "workspace member `{member}` is missing from README.md — update the crate tables"
        );
    }
}

#[test]
fn readme_crate_sections_only_name_real_members() {
    // Every `crates/...` or `vendor/...` path the README links as a section
    // heading must be an actual workspace member.
    let readme = read("README.md");
    let members = workspace_members();
    for line in readme.lines() {
        if !line.starts_with("### [") {
            continue;
        }
        let Some(start) = line.find("](") else { continue };
        let rest = &line[start + 2..];
        let Some(end) = rest.find(')') else { continue };
        let path = &rest[..end];
        if path.starts_with("crates/") || path.starts_with("vendor/") {
            assert!(
                members.iter().any(|member| member == path),
                "README section links `{path}`, which is not a workspace member"
            );
        }
    }
}

#[test]
fn readme_bench_binary_table_matches_the_sources() {
    let readme = read("README.md");
    let bins = std::fs::read_dir(repo_root().join("crates/bench/src/bin"))
        .expect("bench binaries directory")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect::<Vec<_>>();
    assert!(!bins.is_empty());
    for bin in &bins {
        assert!(
            readme.contains(&format!("`{bin}`")),
            "experiment binary `{bin}` is missing from README's figure table"
        );
    }
}

#[test]
fn readme_megaphone_module_table_matches_the_sources() {
    let readme = read("README.md");
    let modules = std::fs::read_dir(repo_root().join("crates/megaphone/src"))
        .expect("megaphone sources")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            // Directory modules (`storage/`) count like file modules.
            let name = name.strip_suffix(".rs").unwrap_or(&name).to_string();
            (name != "lib").then_some(name)
        })
        .collect::<Vec<_>>();
    assert!(modules.len() >= 8, "megaphone module list looks truncated: {modules:?}");
    for module in &modules {
        assert!(
            readme.contains(&format!("`{module}`")),
            "megaphone module `{module}` is missing from README's module table"
        );
    }
}

#[test]
fn readme_nexmark_module_table_matches_the_sources() {
    let readme = read("README.md");
    let modules = std::fs::read_dir(repo_root().join("crates/nexmark/src"))
        .expect("nexmark sources")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let name = name.strip_suffix(".rs").unwrap_or(&name).to_string();
            (name != "lib").then_some(name)
        })
        .collect::<Vec<_>>();
    assert!(modules.len() >= 5, "nexmark module list looks truncated: {modules:?}");
    for module in &modules {
        assert!(
            readme.contains(&format!("`{module}`")),
            "nexmark module `{module}` is missing from README's module table"
        );
    }
}

#[test]
fn readme_workload_mode_table_names_every_mode() {
    // The workload-modes table documents each field of `nexmark::Workload`;
    // the mode types must appear by name so the table cannot silently rot.
    let readme = read("README.md");
    let config = read("crates/nexmark/src/config.rs");
    for mode in ["ZipfSkew", "OutOfOrder", "RateBurst"] {
        assert!(
            config.contains(&format!("pub struct {mode}")),
            "workload mode `{mode}` vanished from nexmark::config — update this test and README"
        );
        assert!(
            readme.contains(mode),
            "workload mode `{mode}` is missing from README's workload-modes table"
        );
    }
    assert!(
        readme.to_lowercase().contains("closed-loop rebalancing"),
        "README must keep the closed-loop rebalancing section"
    );
}

#[test]
fn readme_timelite_module_table_matches_the_sources() {
    let readme = read("README.md");
    let modules = std::fs::read_dir(repo_root().join("crates/timelite/src"))
        .expect("timelite sources")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let name = name.strip_suffix(".rs").unwrap_or(&name).to_string();
            (name != "lib").then_some(name)
        })
        .collect::<Vec<_>>();
    assert!(modules.len() >= 7, "timelite module list looks truncated: {modules:?}");
    for module in &modules {
        assert!(
            readme.contains(&format!("`{module}`")),
            "timelite module `{module}` is missing from README's module table"
        );
    }
}

#[test]
fn readme_communication_files_are_documented() {
    // The communication row must name each of the fabric's source files, so a
    // new transport file cannot land undocumented.
    let readme = read("README.md");
    let files = std::fs::read_dir(repo_root().join("crates/timelite/src/communication"))
        .expect("communication sources")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .filter(|name| name != "mod")
        .collect::<Vec<_>>();
    assert!(files.len() >= 3, "communication file list looks truncated: {files:?}");
    for file in &files {
        assert!(
            readme.contains(&format!("`{file}`")),
            "communication file `{file}` is missing from README's communication row"
        );
    }
}

#[test]
fn readme_harness_module_table_matches_the_sources() {
    let readme = read("README.md");
    let modules = std::fs::read_dir(repo_root().join("crates/harness/src"))
        .expect("harness sources")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let name = name.strip_suffix(".rs")?;
            (name != "lib").then(|| name.to_string())
        })
        .collect::<Vec<_>>();
    assert!(modules.len() >= 7, "harness module list looks truncated: {modules:?}");
    for module in &modules {
        assert!(
            readme.contains(&format!("`{module}`")),
            "harness module `{module}` is missing from README's module table"
        );
    }
}

#[test]
fn readme_documents_cluster_mode() {
    // The cluster-mode section must describe the Config variants, the
    // bootstrap handshake and the wire framing, and point at the equivalence
    // evidence; the variant must actually exist in the engine.
    let readme = read("README.md");
    assert!(readme.contains("## Cluster mode"), "README must keep the Cluster mode section");
    for needle in [
        "Config::Cluster { process, workers_per_process, addresses }",
        "Config::Thread",
        "Config::Process(n)",
        "barrier",
        "[len u64]",
        "[dataflow u64][channel u64][from u64][to u64][kind u8]",
        "tests/cluster_equivalence.rs",
        "cluster_run",
        "cluster-smoke",
    ] {
        assert!(readme.contains(needle), "Cluster mode section lost `{needle}`");
    }
    let execute = read("crates/timelite/src/execute.rs");
    assert!(
        execute.contains("Cluster {"),
        "Config::Cluster vanished from timelite::execute — update this test and README"
    );
}

#[test]
fn readme_documents_durability() {
    // The durability section must describe both backends, the data-dir
    // layout, the recovery semantics and the crash/fault evidence; the
    // backend entry points must actually exist in the sources.
    let readme = read("README.md");
    assert!(readme.contains("## Durability"), "README must keep the Durability section");
    for needle in [
        "StorageConfig::InMemory",
        "StorageConfig::Durable(DurableConfig)",
        "BinStore::open_durable",
        "wal-<gen>.log",
        "sst-<seq>.sst",
        "[len u32][crc32 u32][payload]",
        "pending_install_bytes",
        "tests/recovery.rs",
        "recovery-smoke",
        "fault-inject",
        "fault_run",
        "bin_migrate_large_durable",
    ] {
        assert!(readme.contains(needle), "Durability section lost `{needle}`");
    }
    let bins = read("crates/megaphone/src/bins.rs");
    assert!(
        bins.contains("pub fn open_durable"),
        "BinStore::open_durable vanished from megaphone::bins — update this test and README"
    );
    let storage = read("crates/megaphone/src/storage/mod.rs");
    assert!(
        storage.contains("pub struct DurableConfig"),
        "DurableConfig vanished from megaphone::storage — update this test and README"
    );
}

#[test]
fn readme_documents_the_data_plane() {
    // The data-plane section must keep the copy inventory, the slab ownership
    // rules and the queue memory-ordering argument, and the types it names
    // must actually exist in the sources.
    let readme = read("README.md");
    assert!(readme.contains("## Data plane"), "README must keep the Data plane section");
    for needle in [
        "Copy inventory",
        "Slab ownership rules",
        "Lock-free mailboxes",
        "timelite::codec::Slab",
        "Arc<Vec<u8>>",
        "WRITER_BATCH_FRAMES",
        "MAX_READ_REGION_BYTES",
        "broadcast_encodes_each_record_exactly_once",
        "Vyukov",
        "sleepers",
        "queue-stress",
        "QUEUE_STRESS_ITERS",
        "saturation.rs",
    ] {
        assert!(readme.contains(needle), "Data plane section lost `{needle}`");
    }
    let codec = read("crates/timelite/src/codec.rs");
    assert!(
        codec.contains("pub struct Slab"),
        "Slab vanished from timelite::codec — update this test and README"
    );
    let net = read("crates/timelite/src/communication/net.rs");
    assert!(
        net.contains("WRITER_BATCH_FRAMES") && net.contains("MAX_READ_REGION_BYTES"),
        "the scatter writer / slab-region reader constants vanished from net.rs"
    );
    let channel = read("vendor/crossbeam-channel/src/lib.rs");
    assert!(
        channel.contains("Vyukov") && channel.contains("QUEUE_STRESS_ITERS"),
        "the lock-free channel's docs/stress knob vanished — update this test and README"
    );
}

#[test]
fn readme_documents_scheduling() {
    // The scheduling section must keep the activation-source inventory, the
    // progress-coalescing budget and the park/wake ordering argument, and the
    // mechanisms it names must actually exist in the sources.
    let readme = read("README.md");
    assert!(readme.contains("## Scheduling"), "README must keep the Scheduling section");
    for needle in [
        "ActivationSet",
        "Activator",
        "Self-reactivation",
        "wake_on_change",
        "topological-rank order",
        "PROGRESS_COALESCE_CHANGES",
        "PROGRESS_COALESCE_ROUNDS",
        "Arc<ProgressUpdates>",
        "local_progress_fanout_shares_one_arc",
        "seeded_park_wake_stress_loses_no_wakeups",
        "multi_tenant_steady",
        "tests/activation.rs",
    ] {
        assert!(readme.contains(needle), "Scheduling section lost `{needle}`");
    }
    let schedule = read("crates/timelite/src/schedule.rs");
    assert!(
        schedule.contains("pub struct ActivationSet") && schedule.contains("pub struct Activator"),
        "the activation types vanished from timelite::schedule — update this test and README"
    );
    let worker = read("crates/timelite/src/worker.rs");
    assert!(
        worker.contains("PROGRESS_COALESCE_CHANGES") && worker.contains("PROGRESS_COALESCE_ROUNDS"),
        "the progress coalescing budget vanished from timelite::worker"
    );
    let channel = read("vendor/crossbeam-channel/src/lib.rs");
    assert!(
        channel.contains("seeded_park_wake_stress_loses_no_wakeups"),
        "the park/wake stress test vanished from the vendored channel"
    );
}

#[test]
fn readme_documents_the_control_surface() {
    // The control-surface section must describe the handshake, the command
    // set, the snapshot stream and the CLI, and the types it names must
    // actually exist in the sources.
    let readme = read("README.md");
    assert!(
        readme.contains("## Control surface"),
        "README must keep the Control surface section"
    );
    for needle in [
        "--ctl",
        "megaphone-ctl",
        "ctl listening on",
        "MEGACTL1",
        "CTL_WIRE_VERSION",
        "CtlCommand",
        "CtlSnapshot",
        "CtlWireError",
        "migrate <bin> <worker>",
        "rebalance",
        "set-workload",
        "pause-controller",
        "tests/ctl_wire.rs",
        "tests/ctl_e2e.rs",
        "ctl-smoke",
        "scripts/ctl-smoke.sh",
    ] {
        assert!(readme.contains(needle), "Control surface section lost `{needle}`");
    }
    let ctl = read("crates/megaphone/src/ctl.rs");
    assert!(
        ctl.contains("pub struct CtlServer") && ctl.contains("pub struct CtlClient"),
        "the ctl endpoint types vanished from megaphone::ctl — update this test and README"
    );
    let control = read("crates/megaphone/src/control.rs");
    assert!(
        control.contains("pub enum CtlCommand") && control.contains("pub struct CtlSnapshot"),
        "the ctl wire types vanished from megaphone::control — update this test and README"
    );
    let main = read("crates/ctl/src/main.rs");
    assert!(
        main.contains("tail") && main.contains("migrate"),
        "megaphone-ctl lost its core subcommands — update this test and README"
    );
}

#[test]
fn readme_criterion_bench_list_matches_the_sources() {
    let readme = read("README.md");
    let benches = std::fs::read_dir(repo_root().join("crates/bench/benches"))
        .expect("bench sources")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect::<Vec<_>>();
    for bench in &benches {
        assert!(
            readme.contains(&format!("`{bench}`")),
            "criterion bench `{bench}` is missing from README's bench list"
        );
    }
}
