//! Cross-crate integration test: a NEXMark query running on the timelite
//! engine through the Megaphone operators, migrated mid-stream with a plan from
//! the strategies module, measured with the harness.

use megaphone::prelude::*;
use mp_harness::LatencyTimeline;
use nexmark::{build_query, NexmarkConfig, NexmarkGenerator};
use timelite::prelude::*;

#[test]
fn nexmark_q4_with_fluid_migration_and_harness() {
    let rows_per_worker = timelite::execute(Config::process(2), |worker| {
        let index = worker.index();
        let peers = worker.peers();
        let config = MegaphoneConfig::new(5);
        let rows = std::rc::Rc::new(std::cell::RefCell::new(0u64));

        let rows_inner = rows.clone();
        let (mut control, mut events_in, output) = worker.dataflow::<u64, _, _>(|scope| {
            let (control_input, control) = scope.new_input::<ControlInst>();
            let (event_input, events) = scope.new_input::<nexmark::Event>();
            let output = build_query("q4", config, &control, &events);
            output.stream.inspect(move |_t, _row| *rows_inner.borrow_mut() += 1);
            (control_input, event_input, output)
        });

        let generator = NexmarkGenerator::new(NexmarkConfig::with_rate(10_000));
        let plan = plan_migration(
            MigrationStrategy::Fluid,
            &balanced_assignment(config.bins(), peers),
            &imbalanced_assignment(config.bins(), peers),
        );
        let mut controller = MigrationController::<u64>::new(plan, false);
        let mut timeline = LatencyTimeline::with_interval(1_000_000);

        let epochs = 30u64;
        for epoch in 0..epochs {
            let start = epoch * 500;
            for event_index in (start..start + 500).filter(|i| i % peers as u64 == index as u64) {
                events_in.send(generator.event(event_index));
            }
            if index == 0 && epoch > 5 && !controller.is_complete() {
                controller.advance(&output.probe, &mut control);
            }
            let next_ms = (epoch + 1) * 50;
            control.advance_to(next_ms + 50);
            events_in.advance_to(next_ms);
            worker.step_while(|| output.probe.less_than(&next_ms));
            timeline.record(epoch * 1_000_000, 1_000);
        }
        drop(control);
        drop(events_in);
        worker.step_until_complete();

        assert!(controller.is_complete() || index != 0, "the fluid migration should finish");
        let (points, overall) = timeline.finish();
        assert!(!points.is_empty());
        assert_eq!(overall.count(), epochs);
        let total = *rows.borrow();
        total
    });

    let total: u64 = rows_per_worker.iter().sum();
    assert!(total > 0, "Q4 should report closed auctions");
}
