//! The crash-recovery evidence: SIGKILL a process between a migration's
//! fragment pump and its commit, restart it on the same data directories, and
//! the resumed run produces byte-identical Q5/Q8 rows to an uninterrupted run
//! of the same phases — proving the WAL-backed bin store's atomic,
//! crash-recoverable installs end to end.
//!
//! Each test runs three phases over a shared data root (the closure
//! `mp_harness::fault_run` forks the test binary around):
//!
//! 1. **Phase A** — a durable single-worker dataflow folds the first half of
//!    the event stream, checkpoints every operator store at the cut, and tears
//!    down. The stores under `phase1/` now hold mid-stream state: open
//!    windows, pending reminders, half-counted slides.
//! 2. **Migrate** — every bin is pumped from the `phase1/` stores into fresh
//!    `phase2/` stores through the same fragment/commit path the S operator
//!    uses (`try_install_fragment`). The armed run syncs the WAL and parks at
//!    a barrier *before the final fragment* of the largest bin of the
//!    designated operator — all of that bin's fragments appended, no commit —
//!    and the harness SIGKILLs it there. The restarted run re-opens `phase2/`,
//!    finds the partial install exactly as logged (`pending_install_bytes`),
//!    skips the already-durable fragments, and completes the commit.
//! 3. **Phase B** — a fresh dataflow recovers the `phase2/` stores and folds
//!    the second half of the stream; its rows are the run's result.
//!
//! The oracle is the same three phases on a fresh directory with every
//! barrier a no-op. Byte-equality of the row sets pins that the kill+recovery
//! changed nothing; the resumed-bytes count pins that the kill really landed
//! mid-install.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use megaphone::codec::encode_fragments;
use megaphone::prelude::*;
use megaphone::{Bin, BinId, BinStore};
use mp_harness::{fault_run, FaultCtx};
use nexmark::queries::q5::{HotWindows, SlideCounts};
use nexmark::queries::q8::Q8State;
use nexmark::{build_query, Auction, NexmarkConfig, NexmarkGenerator, Person};
use timelite::prelude::*;

/// Total events generated per run (half before the cut, half after).
const EVENTS_TOTAL: u64 = 20_000;
/// Event-time milliseconds per input epoch.
const EPOCH_MS: u64 = 100;
/// Events per second of event time: low enough that the stream spans ten of
/// Q5's one-second slides, so windows report on both sides of the cut and the
/// recovered state carries open counts, pending reminders and report
/// tombstones all at once.
const RATE: u64 = 2_000;
/// Number of input epochs ([`EVENTS_TOTAL`] over the per-epoch event count).
const TOTAL_EPOCHS: u64 = EVENTS_TOTAL / (RATE * EPOCH_MS / 1_000);
/// The epoch boundary phase A stops (and checkpoints) at.
const CUT_EPOCH: u64 = TOTAL_EPOCHS / 2;
/// Migration fragment budget: small, so the killed bin has many fragments in
/// flight and the crash lands squarely inside an incremental install.
const FRAGMENT_BYTES: usize = 64;

fn storage_at(root: &Path) -> StorageConfig {
    // fsync off: SIGKILL only discards user-space state, and the WAL writes
    // straight through to the kernel, so the kill is still a faithful crash.
    StorageConfig::Durable(DurableConfig::new(root).with_fsync(false))
}

/// Runs `query` as a single durable worker over `epochs`, with stores rooted
/// at `root`. With `checkpoint_at_cut` the dataflow checkpoints every store
/// once the probe reaches the final epoch and returns without draining
/// (mid-stream state is the point); otherwise it drains to completion and
/// returns the emitted rows.
fn run_phase(
    query: &'static str,
    root: PathBuf,
    epochs: std::ops::Range<u64>,
    checkpoint_at_cut: bool,
) -> Vec<String> {
    let results = timelite::execute(Config::thread(), move |worker| {
        set_worker_storage(storage_at(&root));
        let mega_config = MegaphoneConfig::new(4);

        let (mut control, mut input, output, collected) = worker.dataflow::<u64, _, _>(|scope| {
            let (control_input, control) = scope.new_input::<ControlInst>();
            let (event_input, events) = scope.new_input::<nexmark::Event>();
            let collected = Rc::new(RefCell::new(Vec::new()));
            let collected_inner = collected.clone();
            let output = build_query(query, mega_config, &control, &events);
            output.stream.inspect(move |_t, row| collected_inner.borrow_mut().push(row.clone()));
            (control_input, event_input, output, collected)
        });

        let generator = NexmarkGenerator::new(NexmarkConfig::with_rate(RATE));
        let events_per_epoch = RATE * EPOCH_MS / 1_000;
        if epochs.start > 0 {
            // Resuming past the cut: events must carry their true epoch times,
            // not the session's initial time.
            input.advance_to(epochs.start * EPOCH_MS);
            control.advance_to(epochs.start * EPOCH_MS);
        }
        for epoch in epochs.clone() {
            let start = epoch * events_per_epoch;
            for position in start..start + events_per_epoch {
                input.send(generator.event(position));
            }
            let next = (epoch + 1) * EPOCH_MS;
            control.advance_to(next + EPOCH_MS);
            input.advance_to(next);
            worker.step_while(|| output.probe.less_than(&next));
        }
        if checkpoint_at_cut {
            // The probe has reached the cut: no install is in flight, and the
            // stores hold exactly the mid-stream state. Checkpoint and return;
            // the post-closure drain only mutates memory that is thrown away.
            output.checkpoint_all();
            return Vec::new();
        }
        drop(control);
        drop(input);
        worker.step_until_complete();
        let rows = collected.borrow().clone();
        rows
    });
    results.into_iter().flatten().collect()
}

/// Pumps every bin of `operator` from the `phase1` store into the `phase2`
/// store through the incremental fragment/commit path, resuming any install a
/// previous (killed) run left in the WAL. With `kill_here`, an armed run
/// parks at the harness barrier just before the final fragment of the
/// largest bin — after syncing the WAL — so the SIGKILL lands between the
/// fragment pump and the commit. Returns the fragment bytes that were skipped
/// because the WAL had already made them durable.
fn migrate_store<S, D>(
    phase1: &Path,
    phase2: &Path,
    operator: &str,
    kill_here: bool,
    ctx: &FaultCtx,
) -> u64
where
    S: ChunkedCodec + Default + 'static,
    D: Codec + 'static,
{
    let config = MegaphoneConfig::new(4);
    let durable1 = DurableConfig::new(phase1).with_fsync(false);
    let (source, recovered) = BinStore::<u64, S, D>::open_durable(&config, &durable1, operator, 0)
        .unwrap_or_else(|error| panic!("failed to open the phase-1 {operator} store: {error}"));
    assert!(recovered, "phase 1 left no durable state for {operator}");
    let durable2 = DurableConfig::new(phase2).with_fsync(false);
    let (mut target, _) = BinStore::<u64, S, D>::open_durable(&config, &durable2, operator, 0)
        .unwrap_or_else(|error| panic!("failed to open the phase-2 {operator} store: {error}"));

    // The source store is read non-destructively (no retire): after a crash
    // the restarted run recomputes the exact same fragment stream from it.
    let mut images: Vec<(BinId, Vec<u8>)> =
        source.hosted().map(|(bin, contents)| (bin, contents.encode_to_vec())).collect();
    images.sort_by_key(|(bin, _)| *bin);
    let kill_bin =
        images.iter().max_by_key(|(bin, image)| (image.len(), *bin)).map(|&(bin, _)| bin);

    let mut resumed = 0u64;
    for (bin, image) in images {
        if target.is_hosted(bin) {
            continue; // Committed before the crash.
        }
        let value: Bin<u64, S, D> = Bin::decode_from_slice(&image);
        let fragments = encode_fragments(value, FRAGMENT_BYTES);
        let already = target.pending_install_bytes(bin).unwrap_or(0);
        let total = fragments.len();
        let mut sent = 0u64;
        for (index, fragment) in fragments.into_iter().enumerate() {
            let last = index + 1 == total;
            let bytes = fragment.len() as u64;
            if sent + bytes <= already {
                // Already durable in the target's WAL (and re-absorbed into
                // its pending assembly at recovery).
                sent += bytes;
                resumed += bytes;
                continue;
            }
            assert!(
                sent >= already,
                "recovered byte count {already} of bin {bin} is not a fragment boundary"
            );
            if kill_here && Some(bin) == kill_bin && last {
                assert!(index > 0, "the kill bin must span multiple fragments");
                // Every fragment of this bin is appended but the commit is
                // not: make the appends durable and offer the kill point.
                target.sync().expect("pre-kill WAL sync failed");
                ctx.barrier("pre-commit");
            }
            let done = target
                .try_install_fragment(bin, &fragment, last)
                .unwrap_or_else(|error| panic!("install of bin {bin} failed: {error}"));
            assert_eq!(done, last, "bin {bin} completed on the wrong fragment");
            sent += bytes;
        }
    }
    resumed
}

/// Migrates every stateful operator of `query`, killing (when armed) inside
/// the last operator's largest-bin install.
fn migrate_stores(query: &str, phase1: &Path, phase2: &Path, ctx: &FaultCtx) -> u64 {
    match query {
        "q5" => {
            let hot = migrate_store::<HotWindows, (u64, (u64, u64))>(
                phase1, phase2, "Q5-Hot", false, ctx,
            );
            hot + migrate_store::<SlideCounts, (u64, u64)>(phase1, phase2, "Q5-Counts", true, ctx)
        }
        "q8" => migrate_store::<Q8State, Either<Person, Auction>>(
            phase1, phase2, "Q8-NewSellers", true, ctx,
        ),
        other => panic!("no migration plan for query {other}"),
    }
}

/// The full three-phase run (see the module docs). Returns the phase-B rows
/// (sorted) and how many fragment bytes the migration resumed from the WAL
/// instead of re-installing.
fn durable_query_rows(query: &'static str, ctx: &FaultCtx) -> (Vec<String>, u64) {
    let phase1 = ctx.data_dir.join("phase1");
    let phase2 = ctx.data_dir.join("phase2");
    let done = ctx.data_dir.join("phase1.done");
    if !done.exists() {
        run_phase(query, phase1.clone(), 0..CUT_EPOCH, true);
        std::fs::write(&done, b"done").expect("failed to write the phase-1 marker");
    }
    let resumed = migrate_stores(query, &phase1, &phase2, ctx);
    let mut rows = run_phase(query, phase2, CUT_EPOCH..TOTAL_EPOCHS, false);
    rows.sort();
    (rows, resumed)
}

/// Runs the kill+recovery flow and the uninterrupted oracle, and pins their
/// equivalence.
fn assert_recovery(test_name: &'static str, query: &'static str) {
    // Fault run first: the forked children re-enter this test and exit inside
    // fault_run, before the oracle below would run.
    let outcome = fault_run(test_name, move |ctx| durable_query_rows(query, ctx));

    let oracle_dir = std::env::temp_dir()
        .join(format!("mp-recovery-oracle-{test_name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&oracle_dir);
    std::fs::create_dir_all(&oracle_dir).expect("failed to create the oracle directory");
    let (oracle_rows, oracle_resumed) = durable_query_rows(query, &FaultCtx::local(&oracle_dir));

    let (rows, resumed) = outcome.result;
    eprintln!(
        "{query}: killed pid {} mid-install, resumed {resumed} fragment bytes, {} rows",
        outcome.killed_pid,
        rows.len()
    );
    assert!(!oracle_rows.is_empty(), "{query} produced no output");
    assert_eq!(oracle_resumed, 0, "the oracle run unexpectedly resumed a partial install");
    assert!(
        resumed > 0,
        "the killed run (pid {}) resumed no fragments — the SIGKILL missed the install window",
        outcome.killed_pid
    );
    assert_eq!(
        rows, oracle_rows,
        "{query} rows after SIGKILL+recovery diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&oracle_dir);
    let _ = std::fs::remove_dir_all(&outcome.data_dir);
}

#[test]
fn q5_recovery_equivalence() {
    assert_recovery("q5_recovery_equivalence", "q5");
}

#[test]
fn q8_recovery_equivalence() {
    assert_recovery("q8_recovery_equivalence", "q8");
}
