#!/usr/bin/env bash
# Compares two bench CSVs produced by scripts/bench-to-csv.sh and fails (exit 1)
# when any tracked hot-path benchmark regressed by more than the allowed factor.
#
#   Usage: scripts/bench-compare.sh previous.csv current.csv [max-factor]
#
# Tracked benchmarks are matched by group prefix (the part before the first
# '/'); the default set covers the hot paths CI guards:
# routing_lookup, key_to_bin, bin_encode, exchange_throughput,
# exchange_throughput_tcp, saturation, skew_reaction,
# bin_migrate_large_durable, multi_tenant_steady.
# Override with BENCH_COMPARE_GROUPS (comma-separated). The factor defaults
# to 2.0.
set -euo pipefail

previous="${1:?usage: bench-compare.sh previous.csv current.csv [max-factor]}"
current="${2:?usage: bench-compare.sh previous.csv current.csv [max-factor]}"
factor="${3:-2.0}"
groups="${BENCH_COMPARE_GROUPS:-routing_lookup,key_to_bin,bin_encode,exchange_throughput,exchange_throughput_tcp,saturation,skew_reaction,bin_migrate_large_durable,multi_tenant_steady}"

# A first run of the gate (or a wiped bench cache) has no previous CSV. That
# is a missing baseline, not a pass and not a regression: say so explicitly
# and skip the comparison, instead of tripping over the absent file or
# silently succeeding on an empty one.
if [[ ! -f "$previous" ]]; then
    echo "no baseline: previous CSV $previous is missing; skipping comparison"
    exit 0
fi
previous_rows="$(tail -n +2 "$previous" | awk 'NF { rows += 1 } END { print rows + 0 }')"
if [[ "$previous_rows" -eq 0 ]]; then
    echo "no baseline: previous CSV $previous has no data rows; skipping comparison"
    exit 0
fi

awk -F, -v factor="$factor" -v groups="$groups" '
    BEGIN {
        split(groups, tracked_list, ",")
        for (i in tracked_list) tracked[tracked_list[i]] = 1
        failures = 0
        compared = 0
    }
    FNR == 1 { next }                      # skip the header of each file
    {
        bench = $2
        mean = $3 + 0
        split(bench, parts, "/")
        if (!(parts[1] in tracked)) next
        if (NR == FNR) {                   # first file: the previous commit
            previous[bench] = mean
            next
        }
        if (!(bench in previous)) {
            printf "new benchmark %s: %.1f ns/iter (no baseline)\n", bench, mean
            next
        }
        compared += 1
        base = previous[bench]
        if (base > 0 && mean > base * factor) {
            printf "REGRESSION %s: %.1f -> %.1f ns/iter (%.2fx > %.2fx allowed)\n", \
                bench, base, mean, mean / base, factor
            failures += 1
        } else {
            printf "ok %s: %.1f -> %.1f ns/iter\n", bench, base, mean
        }
    }
    END {
        if (compared == 0) {
            print "warning: no tracked benchmarks in common; nothing compared"
        }
        if (failures > 0) {
            printf "%d tracked benchmark(s) regressed beyond %.2fx\n", failures, factor
            exit 1
        }
    }
' "$previous" "$current"
