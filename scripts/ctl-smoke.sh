#!/usr/bin/env bash
# CI smoke test of the live control surface: launch a skewed driver run with
# --ctl, tail two snapshots and issue a rebalance through megaphone-ctl, then
# assert well-formed JSON snapshots, a populated CSV, and clean exits on both
# sides.
#
#   Usage: scripts/ctl-smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

port=$(( 20000 + $$ % 20000 ))
addr="127.0.0.1:${port}"
log="$(mktemp /tmp/ctl-smoke-log.XXXXXX)"
csv="$(mktemp /tmp/ctl-smoke-csv.XXXXXX)"
out="$(mktemp /tmp/ctl-smoke-out.XXXXXX)"

driver_pid=""
cleanup() {
    if [[ -n "$driver_pid" ]] && kill -0 "$driver_pid" 2>/dev/null; then
        kill "$driver_pid" 2>/dev/null || true
        wait "$driver_pid" 2>/dev/null || true
    fi
    rm -f "$log" "$csv" "$out"
}
trap cleanup EXIT

cargo build --release -p mp-bench --bin skew_timeline -p mp-ctl --bin megaphone-ctl

target/release/skew_timeline --workers 2 --rate 20000 --runtime-ms 10000 \
    --zipf 150 --ctl "$addr" >"$log" 2>&1 &
driver_pid=$!

# megaphone-ctl retries the connection internally, so no sleep is needed.
target/release/megaphone-ctl "$addr" tail --count 2 --csv "$csv" >"$out"
if [[ "$(grep -c '"seq"' "$out")" -lt 2 ]]; then
    echo "ctl-smoke: expected two JSON snapshot lines, got:"
    cat "$out"
    exit 1
fi
target/release/megaphone-ctl "$addr" rebalance >/dev/null

wait "$driver_pid"
driver_pid=""

if ! grep -q "ctl listening on $addr" "$log"; then
    echo "ctl-smoke: driver never announced the control endpoint:"
    cat "$log"
    exit 1
fi
# Header plus at least the two tailed rows.
if [[ "$(wc -l < "$csv")" -lt 3 ]]; then
    echo "ctl-smoke: tail --csv produced too few rows:"
    cat "$csv"
    exit 1
fi
echo "ctl-smoke: ok (2 snapshots tailed to JSON+CSV, rebalance routed, clean exits)"
