#!/usr/bin/env bash
# Converts the vendored-criterion bench output (stdin) into a per-commit CSV
# (stdout) for CI's regression-tracking artifact:
#
#   commit,benchmark,mean_ns_per_iter,iterations
#
# Usage: cargo bench -p mp-bench | scripts/bench-to-csv.sh [commit-sha]
set -euo pipefail

commit="${1:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}"

echo "commit,benchmark,mean_ns_per_iter,iterations"
awk -v commit="$commit" '
    # Bench lines look like:
    #   group/label        time:     59.451 µs/iter (8532 iterations)
    $2 == "time:" && NF >= 6 {
        label = $1
        value = $3
        unit = $4
        iterations = $5
        sub(/\/iter$/, "", unit)
        gsub(/[()]/, "", iterations)
        factor = 1
        if (unit == "s") factor = 1e9
        else if (unit == "ms") factor = 1e6
        else if (unit == "\xc2\xb5s") factor = 1e3
        printf "%s,%s,%.3f,%s\n", commit, label, value * factor, iterations
    }
'
