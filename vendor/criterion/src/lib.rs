//! A minimal, API-compatible stand-in for the `criterion` benchmarking crate.
//!
//! The build environment of this repository is offline, so the real
//! `criterion` cannot be fetched from crates.io. This crate implements the
//! subset of its API that the benches under `crates/bench/benches` use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple calibrated wall-clock harness that prints a mean time per iteration.
//! It performs no statistical analysis; swap the `[workspace.dependencies]`
//! entry for the crates.io version when network access is available.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured benchmark, tunable via the
/// `CRITERION_STUB_TARGET_MS` environment variable.
fn target_measure_time() -> Duration {
    let millis = std::env::var("CRITERION_STUB_TARGET_MS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(500u64);
    Duration::from_millis(millis)
}

/// The benchmark manager: entry point handed to every benchmark function.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { target: target_measure_time() }
    }
}

impl Criterion {
    /// Sets the wall-clock time to spend measuring each benchmark.
    pub fn measurement_time(mut self, target: Duration) -> Self {
        self.target = target;
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.target, id, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self }
    }
}

/// A named collection of benchmarks, reported as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs `routine` with `input`, reported as `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.target, &label, &mut |bencher| routine(bencher, input));
        self
    }

    /// Runs `routine` as a benchmark named `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.target, &label, &mut routine);
        self
    }

    /// Finishes the group. (No-op in this stand-in.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// How much setup output to batch per timing measurement in
/// [`Bencher::iter_batched`]. The stand-in times one routine call per setup
/// regardless of the variant.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum BatchSize {
    /// Small routine output; large batches would be fine.
    SmallInput,
    /// Large routine output; keep batches small.
    LargeInput,
    /// Routine output per iteration is about the size of the input.
    PerIteration,
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on values produced by `setup`; only the routine is
    /// included in the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Calibrates an iteration count for `routine`, measures it, and prints the
/// mean time per iteration.
fn run_one<F: FnMut(&mut Bencher)>(target: Duration, label: &str, routine: &mut F) {
    // Calibration: grow the iteration count until one batch takes long enough
    // to time reliably, or the target budget is spent.
    let mut iterations = 1u64;
    loop {
        let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
        routine(&mut bencher);
        if bencher.elapsed >= target || iterations >= 1 << 24 {
            report(label, &bencher);
            return;
        }
        if bencher.elapsed >= target / 8 {
            // Close enough to extrapolate: one final measured batch.
            // Sub-ns/iter routines round down to 0 here; clamp after the
            // division so the extrapolation below never divides by zero.
            let per_iter = (bencher.elapsed.as_nanos() / iterations as u128).max(1);
            iterations = (target.as_nanos() / per_iter).clamp(1, 1 << 24) as u64;
            let mut last = Bencher { iterations, elapsed: Duration::ZERO };
            routine(&mut last);
            report(label, &last);
            return;
        }
        iterations = iterations.saturating_mul(4);
    }
}

fn report(label: &str, bencher: &Bencher) {
    let nanos = bencher.elapsed.as_nanos() as f64 / bencher.iterations.max(1) as f64;
    let (value, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    };
    println!("{label:<40} time: {value:>10.3} {unit}/iter ({} iterations)", bencher.iterations);
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs each group, mirroring criterion's
/// macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
        let mut ran = false;
        criterion.bench_function("smoke", |bencher| {
            ran = true;
            bencher.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
        let mut group = criterion.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |bencher, &n| {
            bencher.iter_batched(|| vec![n; 8], |v| v.iter().sum::<u32>(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
