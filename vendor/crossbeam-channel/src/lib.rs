//! A minimal, API-compatible stand-in for the `crossbeam-channel` crate.
//!
//! The build environment of this repository is offline, so the real
//! `crossbeam-channel` cannot be fetched from crates.io. `timelite` only needs
//! the unbounded MPMC channel with cloneable senders *and* receivers, `send`,
//! `recv`, `try_recv` and `try_iter`; this crate provides exactly that subset
//! on top of a `Mutex<VecDeque>` + `Condvar`. The implementation favours
//! simplicity over the lock-free performance of the real crate — swap the
//! `[workspace.dependencies]` entry for the crates.io version when network
//! access is available.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Creates an unbounded channel, returning the sending and receiving halves.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        available: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    queue: Mutex<State<T>>,
    available: Condvar,
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of an unbounded channel. Cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// An error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Clone, Copy, Eq, PartialEq)]
pub struct SendError<T>(pub T);

/// An error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

/// An error returned by [`Receiver::recv`] when all senders have disconnected
/// and the channel is drained.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct RecvError;

impl<T> Sender<T> {
    /// Enqueues `message`, failing only if every receiver has been dropped.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.queue.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(message));
        }
        state.queue.push_back(message);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.queue.lock().unwrap();
        match state.queue.pop_front() {
            Some(message) => Ok(message),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.queue.lock().unwrap();
        loop {
            if let Some(message) = state.queue.pop_front() {
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.available.wait(state).unwrap();
        }
    }

    /// A non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().unwrap().senders += 1;
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().unwrap().receivers += 1;
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.queue.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they observe the disconnect.
            self.inner.available.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.queue.lock().unwrap().receivers -= 1;
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3u8)));
    }

    #[test]
    fn cloned_handles_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send("a").unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
