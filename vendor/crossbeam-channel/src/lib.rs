//! A minimal, API-compatible stand-in for the `crossbeam-channel` crate.
//!
//! The build environment of this repository is offline, so the real
//! `crossbeam-channel` cannot be fetched from crates.io. `timelite` only needs
//! the unbounded MPMC channel with cloneable senders *and* receivers, `send`,
//! `recv`, `try_recv` and `try_iter`; this crate provides exactly that subset.
//!
//! The queue is *sharded into two lock domains* (a classic two-lock queue,
//! adapted to segments): senders append to a **tail** segment behind one mutex
//! while receivers pop from a **head** segment behind another. A receiver only
//! touches the tail lock when its head segment runs dry, at which point it
//! swaps the entire tail segment into the head in O(1). Senders therefore never
//! contend with receivers while buffered messages remain, which removes the
//! single-mutex serialization of the previous stand-in on the exchange hot
//! path. Swap the `[workspace.dependencies]` entry for the crates.io version
//! when network access is available.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Creates an unbounded channel, returning the sending and receiving halves.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        head: Mutex::new(VecDeque::new()),
        tail: Mutex::new(Tail { segment: VecDeque::new(), senders: 1, receivers: 1 }),
        available: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

/// The sender-side lock domain: the open segment plus the handle counts.
///
/// The handle counts live under the tail lock so that `send`'s receiver check
/// and `try_recv`/`recv`'s sender check are consistent with the enqueued
/// messages they race against.
struct Tail<T> {
    segment: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Shared channel state, sharded into two lock domains.
///
/// Invariant: every message in `head` was sent before every message in `tail`
/// (receivers always drain the tail segment *completely* into the head), so
/// popping `head` first preserves the global FIFO order.
struct Inner<T> {
    /// Closed segment, popped by receivers.
    head: Mutex<VecDeque<T>>,
    /// Open segment, appended to by senders; paired with `available`.
    tail: Mutex<Tail<T>>,
    /// Signaled on every send and on the last sender disconnecting.
    available: Condvar,
}

impl<T> Inner<T> {
    /// Moves the whole tail segment into `head`, preserving order.
    ///
    /// Callers must hold the head lock (passed as `head`) and the tail lock.
    fn refill(head: &mut VecDeque<T>, tail: &mut Tail<T>) {
        if head.is_empty() {
            std::mem::swap(head, &mut tail.segment);
        } else {
            head.append(&mut tail.segment);
        }
    }
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of an unbounded channel. Cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// An error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Clone, Copy, Eq, PartialEq)]
pub struct SendError<T>(pub T);

/// An error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

/// An error returned by [`Receiver::recv`] when all senders have disconnected
/// and the channel is drained.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct RecvError;

impl<T> Sender<T> {
    /// Enqueues `message`, failing only if every receiver has been dropped.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        let mut tail = self.inner.tail.lock().unwrap();
        if tail.receivers == 0 {
            return Err(SendError(message));
        }
        tail.segment.push_back(message);
        drop(tail);
        self.inner.available.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message without blocking.
    ///
    /// Lock order is head → tail; senders only ever take the tail lock, so the
    /// fast path (head segment non-empty) never contends with them.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut head = self.inner.head.lock().unwrap();
        if let Some(message) = head.pop_front() {
            return Ok(message);
        }
        let mut tail = self.inner.tail.lock().unwrap();
        Inner::refill(&mut head, &mut tail);
        match head.pop_front() {
            Some(message) => Ok(message),
            None if tail.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            let mut head = self.inner.head.lock().unwrap();
            if let Some(message) = head.pop_front() {
                return Ok(message);
            }
            let mut tail = self.inner.tail.lock().unwrap();
            Inner::refill(&mut head, &mut tail);
            if let Some(message) = head.pop_front() {
                return Ok(message);
            }
            if tail.senders == 0 {
                return Err(RecvError);
            }
            // Release the head lock before sleeping so other receivers (and
            // `try_recv` calls) are not blocked behind a parked thread; the
            // wait releases the tail lock atomically, so a send that happens
            // after the emptiness check above cannot be missed.
            drop(head);
            let _guard: MutexGuard<'_, Tail<T>> = self.inner.available.wait(tail).unwrap();
        }
    }

    /// A non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.tail.lock().unwrap().senders += 1;
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.tail.lock().unwrap().receivers += 1;
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut tail = self.inner.tail.lock().unwrap();
        tail.senders -= 1;
        if tail.senders == 0 {
            drop(tail);
            // Wake blocked receivers so they observe the disconnect.
            self.inner.available.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.tail.lock().unwrap().receivers -= 1;
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn order_survives_segment_refills() {
        let (tx, rx) = unbounded();
        // Interleave sends and receives so messages cross the tail→head swap
        // at every possible fill level.
        for round in 0..50u32 {
            for offset in 0..round {
                tx.send(round * 100 + offset).unwrap();
            }
            for offset in 0..round {
                assert_eq!(rx.try_recv(), Ok(round * 100 + offset));
            }
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3u8)));
    }

    #[test]
    fn cloned_handles_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send("a").unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }

    /// Many sender threads against one draining receiver: per-sender order must
    /// be preserved and the disconnect must only be observed after the queue
    /// has fully drained.
    #[test]
    fn concurrent_senders_preserve_per_sender_order() {
        const SENDERS: usize = 8;
        const MESSAGES: u64 = 10_000;
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..SENDERS)
            .map(|sender| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for seq in 0..MESSAGES {
                        tx.send((sender, seq)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);

        let mut next_seq = [0u64; SENDERS];
        let mut received = 0u64;
        loop {
            match rx.try_recv() {
                Ok((sender, seq)) => {
                    assert_eq!(seq, next_seq[sender], "sender {sender} reordered");
                    next_seq[sender] += 1;
                    received += 1;
                }
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => break,
            }
        }
        // Disconnected only after every message was drained.
        assert_eq!(received, SENDERS as u64 * MESSAGES);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    /// Same as above but through the blocking `recv`, exercising the condvar
    /// hand-off between the two lock domains.
    #[test]
    fn concurrent_senders_with_blocking_receiver() {
        const SENDERS: usize = 4;
        const MESSAGES: u64 = 5_000;
        let (tx, rx) = unbounded();
        let receiver = std::thread::spawn(move || {
            let mut next_seq = [0u64; SENDERS];
            let mut received = 0u64;
            while let Ok((sender, seq)) = rx.recv() {
                assert_eq!(seq, next_seq[sender], "sender {sender} reordered");
                next_seq[sender] += 1;
                received += 1;
            }
            received
        });
        let handles: Vec<_> = (0..SENDERS)
            .map(|sender| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for seq in 0..MESSAGES {
                        tx.send((sender, seq)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(receiver.join().unwrap(), SENDERS as u64 * MESSAGES);
    }
}
