//! A minimal, API-compatible stand-in for the `crossbeam-channel` crate.
//!
//! The build environment of this repository is offline, so the real
//! `crossbeam-channel` cannot be fetched from crates.io. `timelite` only needs
//! the unbounded MPMC channel with cloneable senders *and* receivers, `send`,
//! `recv`, `try_recv` and `try_iter`; this crate provides exactly that subset.
//!
//! The queue core is an intrusive **lock-free MPSC linked list** in the style
//! of Vyukov's non-intrusive queue: a sender allocates a node, atomically
//! swaps it into the shared `tail`, and then publishes it by storing the
//! `next` link of the previous tail. Producers never take a lock and never
//! wait for one another — a producer preempted between its swap and its link
//! store delays only the *consumption* of the messages behind it, never other
//! producers. The consumer side pops from `head` behind a light mutex (the
//! API allows cloned receivers; with the single receiver per mailbox used by
//! `timelite` that mutex is uncontended and private to the consumer, so
//! send/recv never share a lock — the property the previous two-lock segment
//! queue lacked).
//!
//! Blocking `recv` parks on an *eventcount*: the receiver registers itself in
//! a `sleepers` counter, snapshots a wakeup `generation`, re-checks the
//! queue, and only then waits for the generation to move. The memory-ordering
//! argument for no lost wakeups (all the ordering-critical atomics are
//! `SeqCst`, so a single total order exists):
//!
//! * A sender publishes its node (`next` store), *then* loads `sleepers`.
//! * A receiver increments `sleepers`, *then* re-checks the queue.
//! * If the sender read `sleepers == 0`, that load precedes the receiver's
//!   increment in the total order, hence the sender's earlier publish also
//!   precedes the receiver's later re-check: the re-check finds the message.
//! * If the sender read `sleepers > 0`, it bumps the generation under the
//!   park mutex and notifies: the receiver either sees the moved generation
//!   before waiting or is woken by the notification. Either way, no wakeup
//!   is lost.
//!
//! Freed nodes are safe against ABA-style races by construction: a consumer
//! frees a node only after reading a non-null `next` out of it, and a node's
//! `next` is stored exactly once, by the producer that swapped past it — so
//! no thread can still hold a reference into memory that gets reused.
//!
//! Swap the `[workspace.dependencies]` entry for the crates.io version when
//! network access is available.

#![warn(missing_docs)]

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long `try_recv` spins for a producer caught between its tail swap and
/// its link store before reporting the message as not-yet-sent.
const LINK_SPINS: usize = 64;

/// Creates an unbounded channel, returning the sending and receiving halves.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let stub =
        Box::into_raw(Box::new(Node { next: AtomicPtr::new(ptr::null_mut()), value: None }));
    let inner = Arc::new(Inner {
        tail: AtomicPtr::new(stub),
        head: Mutex::new(HeadPtr(stub)),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        sleepers: AtomicUsize::new(0),
        generation: Mutex::new(0),
        available: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

/// One queue link: `value` is `None` only for the stub node a queue starts
/// with (and for whichever node most recently became the new stub after a
/// pop).
struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

/// The consumer's head pointer, newtyped so the containing `Mutex` is `Send`
/// exactly when `T` is (raw pointers are not `Send` by default).
struct HeadPtr<T>(*mut Node<T>);

// SAFETY: the head pointer is just a handle to heap nodes of `T`; moving it
// across threads is moving access to those `T`s, sound whenever `T: Send`.
unsafe impl<T: Send> Send for HeadPtr<T> {}

/// Shared channel state.
struct Inner<T> {
    /// The most recently pushed node; producers swap themselves in here.
    tail: AtomicPtr<Node<T>>,
    /// The consumer-side stub; its `next` chain holds the queued messages.
    head: Mutex<HeadPtr<T>>,
    /// Live `Sender` handles.
    senders: AtomicUsize,
    /// Live `Receiver` handles.
    receivers: AtomicUsize,
    /// Receivers that are parking or parked in `recv`.
    sleepers: AtomicUsize,
    /// Eventcount generation; bumped (under the lock) by every wakeup.
    generation: Mutex<u64>,
    /// Signaled on every send observed by a sleeper and on the last sender
    /// disconnecting.
    available: Condvar,
}

impl<T> Inner<T> {
    /// Bumps the wakeup generation and wakes every parked receiver.
    fn wake_all(&self) {
        *self.generation.lock().unwrap() += 1;
        self.available.notify_all();
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Free the stub and any messages that were never received.
        let mut node = self.head.get_mut().unwrap().0;
        while !node.is_null() {
            // SAFETY: nodes from `head` onward are exclusively ours now.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next.load(SeqCst);
        }
    }
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of an unbounded channel. Cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// An error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Clone, Copy, Eq, PartialEq)]
pub struct SendError<T>(pub T);

/// An error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

/// An error returned by [`Receiver::recv`] when all senders have disconnected
/// and the channel is drained.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct RecvError;

impl<T> Sender<T> {
    /// Enqueues `message`, failing only if every receiver has been dropped.
    ///
    /// Lock-free: the push is one atomic swap plus one atomic store, with no
    /// waiting on other senders or on receivers.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(SeqCst) == 0 {
            return Err(SendError(message));
        }
        let node =
            Box::into_raw(Box::new(Node { next: AtomicPtr::new(ptr::null_mut()), value: Some(message) }));
        let prev = self.inner.tail.swap(node, SeqCst);
        // SAFETY: `prev` cannot have been freed: a consumer frees a node only
        // after reading a non-null `next` from it, and `prev.next` stays null
        // until this very store (we won the tail swap, so we alone set it).
        unsafe { (*prev).next.store(node, SeqCst) };
        // Publish-then-check; pairs with recv's register-then-recheck (see
        // the module docs for the ordering argument).
        if self.inner.sleepers.load(SeqCst) > 0 {
            self.inner.wake_all();
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut head = self.inner.head.lock().unwrap();
        let head_ptr = head.0;
        // SAFETY: the node `head` points at is only freed by the popper that
        // advances `head` past it, and we hold the head lock.
        unsafe {
            let mut next = (*head_ptr).next.load(SeqCst);
            if next.is_null() {
                if self.inner.tail.load(SeqCst) == head_ptr {
                    // Queue looks empty. If senders remain it is Empty; if
                    // none remain, re-check the link once — a send that
                    // completed between the loads above and the sender-count
                    // load below must still be delivered.
                    if self.inner.senders.load(SeqCst) != 0 {
                        return Err(TryRecvError::Empty);
                    }
                    next = (*head_ptr).next.load(SeqCst);
                    if next.is_null() {
                        return Err(TryRecvError::Disconnected);
                    }
                } else {
                    // A sender swapped the tail but has not yet published its
                    // link. The window is a few instructions; spin briefly,
                    // and if the sender was preempted mid-push treat the
                    // message as not yet sent.
                    for _ in 0..LINK_SPINS {
                        std::hint::spin_loop();
                        next = (*head_ptr).next.load(SeqCst);
                        if !next.is_null() {
                            break;
                        }
                    }
                    if next.is_null() {
                        return Err(TryRecvError::Empty);
                    }
                }
            }
            let value = (*next).value.take().expect("queue node already consumed");
            head.0 = next;
            // SAFETY: `head_ptr` is unreachable now — `head` moved past it,
            // and the producer that set its `next` is done touching it.
            drop(Box::from_raw(head_ptr));
            Ok(value)
        }
    }

    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {}
            }
            // Eventcount park: register as a sleeper, snapshot the wakeup
            // generation, re-check, and wait only while no wakeup has moved
            // the generation past the snapshot.
            self.inner.sleepers.fetch_add(1, SeqCst);
            let snapshot = *self.inner.generation.lock().unwrap();
            let rechecked = self.try_recv();
            match rechecked {
                Ok(_) | Err(TryRecvError::Disconnected) => {
                    self.inner.sleepers.fetch_sub(1, SeqCst);
                    return match rechecked {
                        Ok(value) => Ok(value),
                        _ => Err(RecvError),
                    };
                }
                Err(TryRecvError::Empty) => {
                    let mut generation = self.inner.generation.lock().unwrap();
                    while *generation == snapshot {
                        generation = self.inner.available.wait(generation).unwrap();
                    }
                    drop(generation);
                    self.inner.sleepers.fetch_sub(1, SeqCst);
                }
            }
        }
    }

    /// Reports whether a call to [`try_recv`](Receiver::try_recv) would make
    /// progress right now: a message is queued, or every sender is gone (the
    /// disconnect is an observable state transition, so it counts as ready).
    ///
    /// This is the same head-inspection logic as `try_recv` — including the
    /// brief spin for a producer caught between its tail swap and its link
    /// store, and the one-shot link re-check after observing zero senders —
    /// but it never pops, so peeking cannot reorder or consume messages.
    pub fn is_ready(&self) -> bool {
        let head = self.inner.head.lock().unwrap();
        let head_ptr = head.0;
        // SAFETY: same argument as `try_recv` — we hold the head lock, and
        // the node `head` points at is only freed by the popper that advances
        // `head` past it.
        unsafe {
            let mut next = (*head_ptr).next.load(SeqCst);
            if !next.is_null() {
                return true;
            }
            if self.inner.tail.load(SeqCst) == head_ptr {
                if self.inner.senders.load(SeqCst) != 0 {
                    return false;
                }
                // No senders remain: either a final in-flight send becomes
                // visible on the re-check, or the channel is Disconnected.
                // Both are "ready" — the caller's next `try_recv` progresses.
                return true;
            }
            // A sender swapped the tail but has not yet published its link.
            for _ in 0..LINK_SPINS {
                std::hint::spin_loop();
                next = (*head_ptr).next.load(SeqCst);
                if !next.is_null() {
                    return true;
                }
            }
            false
        }
    }

    /// Parks the calling thread until the channel is [ready](Receiver::is_ready)
    /// or `timeout` elapses (`None` waits indefinitely). Returns whether the
    /// channel was ready when the wait ended.
    ///
    /// This is `recv`'s eventcount park — register in `sleepers`, snapshot the
    /// wakeup `generation`, re-check, and only then wait for the generation to
    /// move — without the pop, so a worker can sleep on its mailbox and still
    /// drain it through whatever path it prefers once woken. The no-lost-wakeup
    /// argument is identical (see the module docs): a sender that read
    /// `sleepers == 0` published its node before our increment in the SeqCst
    /// total order, so our re-check finds it; a sender that read
    /// `sleepers > 0` bumps the generation under the park mutex and notifies.
    pub fn wait(&self, timeout: Option<Duration>) -> bool {
        if self.is_ready() {
            return true;
        }
        let deadline = timeout.map(|timeout| Instant::now() + timeout);
        loop {
            // Eventcount park: register, snapshot, re-check, then wait only
            // while no wakeup has moved the generation past the snapshot.
            self.inner.sleepers.fetch_add(1, SeqCst);
            let snapshot = *self.inner.generation.lock().unwrap();
            if self.is_ready() {
                self.inner.sleepers.fetch_sub(1, SeqCst);
                return true;
            }
            let mut timed_out = false;
            let mut generation = self.inner.generation.lock().unwrap();
            while *generation == snapshot && !timed_out {
                match deadline {
                    None => generation = self.inner.available.wait(generation).unwrap(),
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            timed_out = true;
                            break;
                        }
                        let (guard, result) =
                            self.inner.available.wait_timeout(generation, deadline - now).unwrap();
                        generation = guard;
                        timed_out = result.timed_out() && *generation == snapshot;
                    }
                }
            }
            drop(generation);
            self.inner.sleepers.fetch_sub(1, SeqCst);
            if self.is_ready() {
                return true;
            }
            if timed_out {
                return false;
            }
            // Woken by a generation bump but the message was claimed by a
            // sibling receiver (or the wake raced a pop); park again.
        }
    }

    /// A non-blocking iterator over currently queued messages.
    ///
    /// Holds the (receiver-side) head lock for the iterator's whole lifetime,
    /// so draining many messages pays for one lock round-trip instead of one
    /// per message. Senders never take this lock, so concurrent sends are
    /// unaffected; only other receivers wait until the iterator drops.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { head: self.inner.head.lock().unwrap(), inner: &self.inner }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    head: std::sync::MutexGuard<'a, HeadPtr<T>>,
    inner: &'a Inner<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let head_ptr = self.head.0;
        // SAFETY: same argument as `try_recv` — we hold the head lock, and
        // the node `head` points at is only freed by the popper that advances
        // `head` past it.
        unsafe {
            let mut next = (*head_ptr).next.load(SeqCst);
            if next.is_null() {
                if self.inner.tail.load(SeqCst) == head_ptr {
                    return None;
                }
                // A sender swapped the tail but has not published its link
                // yet; spin briefly exactly as `try_recv` does.
                for _ in 0..LINK_SPINS {
                    std::hint::spin_loop();
                    next = (*head_ptr).next.load(SeqCst);
                    if !next.is_null() {
                        break;
                    }
                }
                if next.is_null() {
                    return None;
                }
            }
            let value = (*next).value.take().expect("queue node already consumed");
            self.head.0 = next;
            drop(Box::from_raw(head_ptr));
            Some(value)
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, SeqCst);
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, SeqCst);
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, SeqCst) == 1 {
            // Wake blocked receivers so they observe the disconnect.
            self.inner.wake_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, SeqCst);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-test iteration scale; the CI `queue-stress` job raises it.
    fn stress_iters(default: u64) -> u64 {
        std::env::var("QUEUE_STRESS_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
    }

    /// A tiny deterministic RNG (xorshift64*), so the stress schedules are
    /// reproducible from their printed seed.
    fn seeded_rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed.max(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn order_survives_interleaved_fill_levels() {
        let (tx, rx) = unbounded();
        // Interleave sends and receives so pops cross the empty/non-empty
        // boundary at every possible fill level.
        for round in 0..50u32 {
            for offset in 0..round {
                tx.send(round * 100 + offset).unwrap();
            }
            for offset in 0..round {
                assert_eq!(rx.try_recv(), Ok(round * 100 + offset));
            }
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3u8)));
    }

    #[test]
    fn cloned_handles_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send("a").unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }

    /// Many sender threads against one draining receiver: per-sender order must
    /// be preserved and the disconnect must only be observed after the queue
    /// has fully drained.
    #[test]
    fn concurrent_senders_preserve_per_sender_order() {
        const SENDERS: usize = 8;
        let messages = stress_iters(10_000);
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..SENDERS)
            .map(|sender| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for seq in 0..messages {
                        tx.send((sender, seq)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);

        let mut next_seq = [0u64; SENDERS];
        let mut received = 0u64;
        loop {
            match rx.try_recv() {
                Ok((sender, seq)) => {
                    assert_eq!(seq, next_seq[sender], "sender {sender} reordered");
                    next_seq[sender] += 1;
                    received += 1;
                }
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => break,
            }
        }
        // Disconnected only after every message was drained.
        assert_eq!(received, SENDERS as u64 * messages);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    /// Same as above but through the blocking `recv`, exercising the
    /// eventcount park/wake protocol under producer contention.
    #[test]
    fn concurrent_senders_with_blocking_receiver() {
        const SENDERS: usize = 4;
        let messages = stress_iters(5_000);
        let (tx, rx) = unbounded();
        let receiver = std::thread::spawn(move || {
            let mut next_seq = [0u64; SENDERS];
            let mut received = 0u64;
            while let Ok((sender, seq)) = rx.recv() {
                assert_eq!(seq, next_seq[sender], "sender {sender} reordered");
                next_seq[sender] += 1;
                received += 1;
            }
            received
        });
        let handles: Vec<_> = (0..SENDERS)
            .map(|sender| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for seq in 0..messages {
                        tx.send((sender, seq)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(receiver.join().unwrap(), SENDERS as u64 * messages);
    }

    /// Seeded stress: producers pace themselves with a deterministic RNG (so
    /// tail swaps, link stores and drains interleave differently per seed) and
    /// the receiver mixes blocking and non-blocking pops. Per-sender FIFO and
    /// exact message counts must survive every schedule.
    #[test]
    fn seeded_multi_producer_drain_order_stress() {
        const SENDERS: usize = 6;
        for seed in [0x9e37_79b9u64, 0xdead_beef, 0x5eed_cafe] {
            let messages = stress_iters(4_000);
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..SENDERS)
                .map(|sender| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut rng = seeded_rng(seed ^ (sender as u64 + 1));
                        for seq in 0..messages {
                            tx.send((sender, seq)).unwrap();
                            // Occasionally yield so some pushes land with the
                            // queue empty (parked receiver) and some in bursts.
                            if rng().is_multiple_of(64) {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            drop(tx);

            let mut rng = seeded_rng(seed);
            let mut next_seq = [0u64; SENDERS];
            let mut received = 0u64;
            loop {
                let popped = if rng().is_multiple_of(4) {
                    match rx.recv() {
                        Ok(pair) => Ok(pair),
                        Err(RecvError) => Err(TryRecvError::Disconnected),
                    }
                } else {
                    rx.try_recv()
                };
                match popped {
                    Ok((sender, seq)) => {
                        assert_eq!(seq, next_seq[sender], "seed {seed:#x}: sender {sender} reordered");
                        next_seq[sender] += 1;
                        received += 1;
                    }
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            assert_eq!(received, SENDERS as u64 * messages, "seed {seed:#x} lost messages");
            for handle in handles {
                handle.join().unwrap();
            }
        }
    }

    /// Closing the receiver while producers are mid-push: every producer must
    /// see a clean prefix of accepted sends followed only by rejections, and
    /// every value ever accepted must be dropped exactly once (the queue's
    /// teardown frees undelivered nodes; nothing leaks, nothing double-frees).
    #[test]
    fn close_while_pushing_rejects_cleanly_and_leaks_nothing() {
        use std::sync::atomic::AtomicU64;

        static LIVE: AtomicU64 = AtomicU64::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Self {
                LIVE.fetch_add(1, SeqCst);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, SeqCst);
            }
        }

        const SENDERS: usize = 4;
        for seed in [3u64, 17, 255] {
            let messages = stress_iters(2_000);
            let (tx, rx) = unbounded::<Tracked>();
            let handles: Vec<_> = (0..SENDERS)
                .map(|sender| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut rejected_at = None;
                        for seq in 0..messages {
                            match tx.send(Tracked::new()) {
                                Ok(()) => assert!(
                                    rejected_at.is_none(),
                                    "seed {seed}: sender {sender} accepted after a rejection"
                                ),
                                Err(SendError(_)) => {
                                    rejected_at.get_or_insert(seq);
                                }
                            }
                        }
                        rejected_at
                    })
                })
                .collect();
            drop(tx);
            // Drain a seeded amount, then drop the receiver mid-stream.
            let mut rng = seeded_rng(seed);
            let drain = rng() % (messages / 2);
            let mut drained = 0u64;
            while drained < drain {
                match rx.try_recv() {
                    Ok(_) => drained += 1,
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            drop(rx);
            for handle in handles {
                handle.join().unwrap();
            }
            // The channel is gone: every Tracked ever constructed (delivered,
            // queued-undelivered, or bounced by SendError) must be dropped.
            assert_eq!(LIVE.load(SeqCst), 0, "seed {seed} leaked queued messages");
        }
    }

    /// ABA-shaped reuse: a tight ping-pong keeps the queue oscillating between
    /// empty and one node, so the allocator immediately recycles each freed
    /// node's address for the next push. Stale-pointer bugs in the pop path
    /// (freeing a node a producer still links through) show up here as lost,
    /// duplicated or corrupted values.
    #[test]
    fn aba_shaped_node_reuse_round_trips_every_value() {
        let rounds = stress_iters(50_000);
        let (data_tx, data_rx) = unbounded();
        let (ack_tx, ack_rx) = unbounded();
        let producer = std::thread::spawn(move || {
            for value in 0..rounds {
                data_tx.send(value).unwrap();
                // Wait for the ack so the node is freed (and its address
                // reusable) before the next push.
                assert_eq!(ack_rx.recv(), Ok(value));
            }
        });
        for expected in 0..rounds {
            assert_eq!(data_rx.recv(), Ok(expected));
            ack_tx.send(expected).unwrap();
        }
        producer.join().unwrap();
        assert_eq!(data_rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    /// `is_ready` must peek without consuming, report readiness exactly when
    /// `try_recv` would progress, and treat a drained-and-disconnected channel
    /// as ready (the disconnect is an observable transition).
    #[test]
    fn is_ready_peeks_without_popping() {
        let (tx, rx) = unbounded();
        assert!(!rx.is_ready());
        tx.send(11u32).unwrap();
        assert!(rx.is_ready());
        assert!(rx.is_ready(), "peeking must not consume");
        assert_eq!(rx.try_recv(), Ok(11));
        assert!(!rx.is_ready());
        drop(tx);
        assert!(rx.is_ready(), "disconnect counts as ready");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    /// `wait` with a timeout must return false on an empty channel (after
    /// roughly the timeout), true immediately when a message is queued, and
    /// true on disconnect.
    #[test]
    fn wait_times_out_empty_and_returns_on_ready() {
        let (tx, rx) = unbounded();
        let start = Instant::now();
        assert!(!rx.wait(Some(Duration::from_millis(20))));
        assert!(start.elapsed() >= Duration::from_millis(15), "returned before the timeout");
        tx.send(5u8).unwrap();
        assert!(rx.wait(Some(Duration::from_millis(20))));
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert!(rx.wait(None), "disconnect must end an indefinite wait");
    }

    /// Seeded park/wake stress for the non-popping `wait`: a consumer parks
    /// indefinitely before every pop while a seeded producer races sends into
    /// the park transition (sometimes landing exactly between the sleeper
    /// registration and the generation wait). A single lost wakeup hangs the
    /// test — the CI `queue-stress` job runs this in release at high iteration
    /// counts under a runner timeout.
    #[test]
    fn seeded_park_wake_stress_loses_no_wakeups() {
        for seed in [0x00c0_ffee_u64, 0xfeed_f00d, 0x0badcafe] {
            let rounds = stress_iters(20_000);
            let (tx, rx) = unbounded();
            let producer = std::thread::spawn(move || {
                let mut rng = seeded_rng(seed);
                for value in 0..rounds {
                    // A mix of immediate sends (land while the consumer still
                    // spins toward its park) and yield-delayed sends (land
                    // mid-park-transition or against a parked sleeper).
                    match rng() % 4 {
                        0 => {}
                        1 => std::thread::yield_now(),
                        _ => {
                            for _ in 0..rng() % 32 {
                                std::hint::spin_loop();
                            }
                        }
                    }
                    tx.send(value).unwrap();
                }
            });
            for expected in 0..rounds {
                // Park with no timeout: a lost wakeup here hangs forever
                // instead of being papered over by a timeout retry.
                assert!(rx.wait(None), "seed {seed:#x}: wait returned not-ready");
                assert_eq!(rx.try_recv(), Ok(expected), "seed {seed:#x} lost a message");
            }
            producer.join().unwrap();
            assert!(rx.wait(None), "seed {seed:#x}: disconnect must wake the waiter");
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }

    /// Seeded burst/drain cycles: bursts of seeded sizes are pushed and fully
    /// drained, so freed node addresses from one burst are recycled into the
    /// next while order is re-verified every cycle.
    #[test]
    fn seeded_burst_drain_cycles_preserve_order_across_reuse() {
        let (tx, rx) = unbounded();
        let mut rng = seeded_rng(0xaba_aba);
        let mut sent = 0u64;
        let cycles = stress_iters(400);
        for _ in 0..cycles {
            let burst = rng() % 37 + 1;
            for _ in 0..burst {
                tx.send(sent).unwrap();
                sent += 1;
            }
            let mut expected = sent - burst;
            while expected < sent {
                assert_eq!(rx.try_recv(), Ok(expected));
                expected += 1;
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}
