//! Facade crate re-exporting the Megaphone reproduction workspace.
pub use megaphone;
pub use mp_harness;
pub use nexmark;
pub use timelite;
